//! Exhaustive model checking of small protocol instances.
//!
//! [`ModelChecker`] performs a depth-first search over *all* schedules from
//! an initial configuration, de-duplicating configurations (two schedules
//! that lead to the same configuration explore a single subtree). On every
//! reachable configuration it checks the task's safety predicates —
//! k-agreement and validity — and, optionally, solo termination within a
//! step budget from every reachable configuration, which is precisely
//! obstruction-freedom restricted to the explored region (and for Algorithm 1
//! the paper's Lemma 8 gives the concrete budget `8(n-k)`).
//!
//! Racing-style algorithms have unbounded state spaces (lap counters grow
//! under contention), so exploration is bounded by depth, state count, and
//! (optionally) frontier size; [`CheckReport::complete`] records whether any
//! cutoff actually discarded work. A report with `complete == true` and no
//! violation is an exhaustive proof of safety for that instance;
//! `complete == false` is a bounded certificate.
//!
//! # Architecture
//!
//! The checker is a thin client of the shared search core
//! ([`crate::engine`]): the engine owns the hot loop — fingerprint-keyed
//! discovery-time dedup ([`crate::canon::DedupSet`]), parent-pointer
//! schedule arenas, copy-on-write scratch children with delta-restore, and
//! exact budget accounting — while this module contributes only the
//! checker's strategies: the [`AllRunning`] expansion policy, a LIFO
//! frontier, and a visitor that evaluates safety plus (memoized) solo
//! termination on every visited configuration.

use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use crate::canon::{self, Canonicalizer, DedupSet};
use crate::config::Configuration;
use crate::engine::{
    AllRunning, Budget, Checkpointing, Control, CrashBounded, EdgeCtx, Engine, Fifo, Lifo, NodeCtx,
    ResumeError, SearchImage, SearchStats, Visitor,
};
use crate::ids::{Action, ProcessId};
use crate::protocol::Protocol;
use crate::runner::{solo_run, SoloRunError};
use crate::search::{PrehashedMap, ScheduleArena};
use crate::shard::{run_sharded, ShardOptions, ShardVisitor, StripedDedup, WitnessRef};
use crate::snapshot::{read_snapshot, write_snapshot, RunMeta, SnapshotError};
use crate::task::{KSetTask, TaskViolation};

/// Bounded-exhaustive schedule explorer.
#[derive(Clone, Copy, Debug)]
pub struct ModelChecker {
    /// Maximum schedule length explored from the initial configuration.
    pub max_depth: usize,
    /// Maximum number of distinct configurations visited.
    pub max_states: usize,
    /// Maximum DFS frontier (pending-stack) size; exceeding it drops the
    /// would-be children and marks the report incomplete, bounding memory
    /// even when `max_states` alone would not.
    pub max_frontier: usize,
    /// If set, verify from every visited configuration that every running
    /// process decides within this many solo steps (obstruction-freedom).
    pub solo_budget: Option<usize>,
    /// Search the quotient state space modulo the protocol's declared
    /// symmetry group: explore one representative per orbit (sound for
    /// every property the checker tests — see [`crate::canon`]).
    pub symmetry_reduction: bool,
    /// Fingerprint-only visited membership. **Unsound** (probabilistic);
    /// only settable via [`ModelChecker::unsound_hash_compaction`], always
    /// reported in the [`CheckReport`], and never accepted by
    /// [`CheckReport::proves_safety`].
    pub hash_compaction: bool,
    /// Memoize solo-termination outcomes keyed on (local state, object
    /// values) — sound, on by default; disable for A/B measurement.
    pub solo_memo: bool,
    /// Crash-injection failure budget `f`: from every configuration, in
    /// addition to every running process's step, the search also takes a
    /// crash transition for every running process as long as fewer than `f`
    /// processes have crashed — so the explored space covers *every* crash
    /// pattern with at most `f` failures. `0` (the default) disables crash
    /// injection and explores exactly the failure-free space.
    pub max_failures: usize,
    /// Optional wall-clock deadline for the whole search. Expiry is
    /// graceful: the run returns a partial report with
    /// [`CheckReport::deadline_truncated`] set (never a hang, never an
    /// abort).
    pub deadline: Option<Duration>,
    /// If set, verify *wait-freedom* with this per-process step bound: from
    /// the initial configuration, every process must decide within this many
    /// of its *own* steps no matter how the other processes are scheduled
    /// — including schedules where up to `max_failures` of them crash. This
    /// is strictly stronger than the solo check (`solo_budget`), which only
    /// covers executions where the process runs alone.
    pub wait_free_bound: Option<usize>,
    /// Worker threads for the safety sweep. `1` (the default) runs the
    /// sequential engine; `t > 1` runs the work-stealing sharded driver
    /// ([`crate::shard`]) with **verdict parity**: identical pass/fail and
    /// — on complete searches — identical state counts, in both exact and
    /// symmetry-reduced modes. Resumed legs always run sequentially (in
    /// FIFO order, preserving the sharded run's wave discipline), so a
    /// checkpointed sharded run finishes to the same report.
    pub threads: usize,
}

impl ModelChecker {
    /// A checker with the given depth and state bounds, an unbounded
    /// frontier, and no solo checking.
    pub fn new(max_depth: usize, max_states: usize) -> Self {
        ModelChecker {
            max_depth,
            max_states,
            max_frontier: usize::MAX,
            solo_budget: None,
            symmetry_reduction: false,
            hash_compaction: false,
            solo_memo: true,
            max_failures: 0,
            deadline: None,
            wait_free_bound: None,
            threads: 1,
        }
    }

    /// Enable solo-termination (obstruction-freedom) checking with the given
    /// per-run step budget.
    pub fn with_solo_budget(mut self, budget: usize) -> Self {
        self.solo_budget = Some(budget);
        self
    }

    /// Bound the DFS frontier: at most `frontier` configurations pending at
    /// once. Searches that hit the bound degrade predictably — they finish
    /// with `complete == false` instead of growing memory without limit.
    pub fn with_frontier_budget(mut self, frontier: usize) -> Self {
        self.max_frontier = frontier;
        self
    }

    /// Search the quotient space modulo the protocol's declared symmetry
    /// group ([`Protocol::symmetry`]): visited-set membership is decided per
    /// *orbit*, so permuted twins of an explored configuration are never
    /// re-explored. Verdicts are unchanged (the checked properties are
    /// renaming-invariant and witness schedules remain real schedules);
    /// state counts shrink by up to the group order.
    pub fn with_symmetry_reduction(mut self) -> Self {
        self.symmetry_reduction = true;
        self
    }

    /// Opt in to fingerprint-only visited membership. **Unsound**: a
    /// fingerprint collision silently merges two distinct states, so a
    /// passing report is probabilistic evidence, not proof — the report
    /// records the mode and [`CheckReport::proves_safety`] rejects it.
    pub fn unsound_hash_compaction(mut self) -> Self {
        self.hash_compaction = true;
        self
    }

    /// Disable the (sound, default-on) solo-outcome memo — for A/B
    /// measurement of the memo itself.
    pub fn without_solo_memo(mut self) -> Self {
        self.solo_memo = false;
        self
    }

    /// Enable exhaustive crash injection with failure budget `f`: the
    /// search additionally takes, from every configuration with fewer than
    /// `f` crashed processes, a crash transition for each running process.
    /// Witness schedules then interleave steps and crashes ([`Action`]).
    pub fn with_max_failures(mut self, f: usize) -> Self {
        self.max_failures = f;
        self
    }

    /// Bound the whole check by wall-clock time; see
    /// [`ModelChecker::deadline`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Shard the safety sweep across `threads` workers; see
    /// [`ModelChecker::threads`]. `1` restores the sequential engine.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is `0` or exceeds
    /// [`MAX_THREADS`](crate::shard::MAX_THREADS).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(
            (1..=crate::shard::MAX_THREADS).contains(&threads),
            "thread count must be in 1..={}",
            crate::shard::MAX_THREADS
        );
        self.threads = threads;
        self
    }

    /// Enable wait-freedom checking with the given per-process own-step
    /// bound; see [`ModelChecker::wait_free_bound`]. Crash adversaries obey
    /// [`ModelChecker::max_failures`] (and never crash the process under
    /// test — a crashed process trivially takes no more steps).
    pub fn with_wait_free_bound(mut self, bound: usize) -> Self {
        self.wait_free_bound = Some(bound);
        self
    }

    /// Explore all schedules from the initial configuration for `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if the initial configuration cannot be constructed (bad inputs
    /// are a usage error in test code).
    pub fn check<P: Protocol>(&self, protocol: &P, inputs: &[u64]) -> CheckReport {
        let mut memo = SoloMemo::new();
        self.check_with_memo(protocol, inputs, &mut memo)
    }

    /// [`ModelChecker::check`] with a caller-provided solo memo, so
    /// [`ModelChecker::check_all_inputs`] shares one memo across every input
    /// vector (solo outcomes depend only on local state and object values,
    /// never on the input vector).
    fn check_with_memo<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
        memo: &mut SoloMemo<P>,
    ) -> CheckReport {
        self.run_engine(protocol, inputs, memo, None, None)
            .expect("fresh runs cannot fail to resume")
    }

    /// The single engine-driving core behind [`ModelChecker::check`],
    /// [`ModelChecker::check_paused`], [`ModelChecker::resume`], and the
    /// snapshot-file entry points: build dedup/arena/visitor, run (or
    /// resume) the engine under the configured crash and time budgets, then
    /// — if the safety sweep finished uninterrupted and clean — run the
    /// wait-freedom product search.
    fn run_engine<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
        memo: &mut SoloMemo<P>,
        resume_from: Option<&SearchImage>,
        ckpt: Option<Checkpointing<'_>>,
    ) -> Result<CheckReport, ResumeError> {
        let initial =
            Configuration::initial(protocol, inputs).expect("model checker requires valid inputs");
        let (stats, sweep_violation, solo_memo_hits, symmetry_group, symmetry_degraded) =
            if self.threads > 1 && resume_from.is_none() {
                self.sharded_sweep(protocol, inputs, &initial, memo, ckpt)
            } else {
                // Pre-size the visited set toward the state budget (clamped:
                // tiny protocols should not pay megabytes up front).
                let capacity = self.max_states.min(1 << 14);
                let mut visited: DedupSet<P> = if self.symmetry_reduction {
                    DedupSet::reduced(Canonicalizer::for_inputs(protocol, inputs), capacity)
                } else {
                    DedupSet::exact(capacity)
                };
                if self.hash_compaction {
                    visited = visited.unsound_hash_compaction();
                }
                let mut arena = ScheduleArena::new();
                let mut visitor = CheckVisitor {
                    task: protocol.task(),
                    inputs,
                    solo_budget: self.solo_budget,
                    solo_memo: self.solo_memo,
                    memo,
                    solo_scratch: None,
                    solo_memo_hits: 0,
                    violation: None,
                };
                let mut engine = Engine::new(Budget {
                    max_depth: self.max_depth,
                    max_states: self.max_states,
                    max_frontier: self.max_frontier,
                });
                if let Some(deadline) = self.deadline {
                    engine = engine.with_deadline(deadline);
                }
                // `f = 0` makes `CrashBounded` the identity wrapper, so the
                // failure-free checker takes this same path.
                let mut expansion = CrashBounded::new(AllRunning, self.max_failures);
                let stats = match resume_from {
                    None => engine.run_with(
                        protocol,
                        initial.clone(),
                        &mut visited,
                        &mut arena,
                        &mut expansion,
                        &mut Lifo::new(),
                        &mut visitor,
                        ckpt,
                    ),
                    // A resumed sharded image is a depth-ordered wave snapshot:
                    // finishing it in FIFO order preserves the min-depth
                    // discovery invariant, so the completed report matches an
                    // uninterrupted sharded run. Resume itself stays sequential.
                    Some(image) if self.threads > 1 => engine.resume(
                        protocol,
                        initial.clone(),
                        image,
                        &mut visited,
                        &mut arena,
                        &mut expansion,
                        &mut Fifo::new(),
                        &mut visitor,
                        ckpt,
                    )?,
                    Some(image) => engine.resume(
                        protocol,
                        initial.clone(),
                        image,
                        &mut visited,
                        &mut arena,
                        &mut expansion,
                        &mut Lifo::new(),
                        &mut visitor,
                        ckpt,
                    )?,
                };
                (
                    stats,
                    visitor.violation,
                    visitor.solo_memo_hits,
                    visited.group_order(),
                    visited.degraded(),
                )
            };
        let mut violation = sweep_violation;
        let mut complete = stats.complete();
        // Wait-freedom runs only once the safety sweep ran to its natural
        // end (an interrupted run re-checks it after the resumed leg, so
        // the final verdict is identical either way).
        if violation.is_none() && !stats.deadline_truncated && !stats.paused {
            if let Some(bound) = self.wait_free_bound {
                let (wf_violation, wf_complete) = wait_free_counterexample(
                    protocol,
                    &initial,
                    bound,
                    self.max_failures,
                    self.max_states,
                );
                violation = wf_violation;
                complete &= wf_complete;
            }
        }
        Ok(CheckReport {
            states: stats.states,
            terminal_states: stats.terminal_states,
            complete,
            deepest: stats.deepest,
            peak_frontier: stats.peak_frontier,
            symmetry_group,
            symmetry_degraded,
            hash_compaction: self.hash_compaction,
            solo_memo_hits,
            deadline_truncated: stats.deadline_truncated,
            paused: stats.paused,
            violation,
        })
    }

    /// The work-stealing leg of [`ModelChecker::run_engine`]: shard the
    /// safety sweep across `self.threads` workers over a [`StripedDedup`]
    /// built from the same dedup template the sequential path would use.
    /// Each worker carries its own checker visitor layered over the shared
    /// solo-termination memo; after the join, worker memos fold back into
    /// the caller's memo, hit counters are summed, and the reported
    /// violation is the deterministic minimum across workers (kind rank,
    /// then schedule length, then lexicographic schedule).
    fn sharded_sweep<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
        initial: &Configuration<P>,
        memo: &mut SoloMemo<P>,
        ckpt: Option<Checkpointing<'_>>,
    ) -> (SearchStats, Option<FoundViolation>, usize, usize, bool) {
        let capacity = self.max_states.min(1 << 14);
        let mut template: DedupSet<P> = if self.symmetry_reduction {
            DedupSet::reduced(Canonicalizer::for_inputs(protocol, inputs), capacity)
        } else {
            DedupSet::exact(capacity)
        };
        if self.hash_compaction {
            template = template.unsound_hash_compaction();
        }
        // More stripes than workers keeps lock contention low without
        // affecting results (stripe assignment is a pure function of the
        // fingerprint, so the partition is deterministic).
        let striped = StripedDedup::new(template, (self.threads * 8).min(64), self.max_states);
        let mut visitors: Vec<ShardCheckVisitor<'_, P>> = (0..self.threads)
            .map(|_| ShardCheckVisitor {
                task: protocol.task(),
                inputs,
                solo_budget: self.solo_budget,
                solo_memo: self.solo_memo,
                cache: LayeredMemo {
                    base: &*memo,
                    local: SoloMemo::new(),
                },
                solo_scratch: None,
                solo_memo_hits: 0,
                violation: None,
            })
            .collect();
        let opts = ShardOptions {
            threads: self.threads,
            budget: Budget {
                max_depth: self.max_depth,
                max_states: self.max_states,
                max_frontier: self.max_frontier,
            },
            deadline: self.deadline,
        };
        let stats = run_sharded(
            protocol,
            initial.clone(),
            &striped,
            &opts,
            || CrashBounded::new(AllRunning, self.max_failures),
            &mut visitors,
            ckpt,
        );
        let group_order = striped.group_order();
        let group_degraded = striped.degraded();
        let mut hits = 0;
        let mut violation: Option<FoundViolation> = None;
        let mut locals = Vec::with_capacity(visitors.len());
        for worker in visitors {
            hits += worker.solo_memo_hits;
            violation = merge_violations(violation, worker.violation);
            locals.push(worker.cache.local);
        }
        for local in locals {
            memo.merge(local);
        }
        (stats, violation, hits, group_order, group_degraded)
    }

    /// [`ModelChecker::check`] that pauses itself after roughly
    /// `pause_after` visited states, returning the partial report and the
    /// in-memory [`SearchImage`] to hand to [`ModelChecker::resume`]. If the
    /// search finishes before the first snapshot fires, the image is `None`
    /// and the report is final.
    pub fn check_paused<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
        pause_after: usize,
    ) -> (CheckReport, Option<SearchImage>) {
        let mut memo = SoloMemo::new();
        let mut image = None;
        let mut sink = |img: &SearchImage| {
            image = Some(img.clone());
            Control::Stop
        };
        let report = self
            .run_engine(
                protocol,
                inputs,
                &mut memo,
                None,
                Some(Checkpointing {
                    interval: pause_after,
                    sink: &mut sink,
                }),
            )
            .expect("fresh runs cannot fail to resume");
        if report.paused {
            (report, image)
        } else {
            // Finished before the first snapshot (or exactly at it): the
            // report is already final, no resume needed.
            (report, None)
        }
    }

    /// Resume a check from an in-memory [`SearchImage`] (produced by
    /// [`ModelChecker::check_paused`] or a [`Checkpointing`] sink) and run
    /// it to the end. The final report has full parity with an
    /// uninterrupted [`ModelChecker::check`]: identical verdict and
    /// identical state counts.
    ///
    /// # Errors
    ///
    /// [`ResumeError`] if the image is internally inconsistent or does not
    /// belong to this checker's parameters.
    pub fn resume<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
        image: &SearchImage,
    ) -> Result<CheckReport, ResumeError> {
        let mut memo = SoloMemo::new();
        self.run_engine(protocol, inputs, &mut memo, Some(image), None)
    }

    /// The [`RunMeta`] identifying this checker's run over `protocol` and
    /// `inputs` — written into every snapshot and verified on resume.
    fn run_meta<P: Protocol>(&self, protocol: &P, inputs: &[u64]) -> RunMeta {
        RunMeta {
            protocol_name: protocol.name().to_string(),
            inputs: inputs.to_vec(),
            max_depth: self.max_depth as u64,
            max_states: self.max_states as u64,
            symmetry_reduction: self.symmetry_reduction,
            solo_budget: self.solo_budget.map_or(u64::MAX, |b| b as u64),
            max_failures: self.max_failures as u64,
        }
    }

    /// [`ModelChecker::check`] that writes a checksummed snapshot file to
    /// `path` every `interval` visited states (and once more on deadline
    /// expiry), so a killed process can pick up from the last snapshot with
    /// [`ModelChecker::resume_from_file`]. Snapshot writes are atomic
    /// (write-to-temp, fsync, rename) — a crash mid-write never corrupts an
    /// existing snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] if a snapshot write fails (the search itself still
    /// runs to completion; the error is reported afterwards).
    pub fn check_with_snapshot_file<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
        path: &Path,
        interval: usize,
    ) -> Result<CheckReport, SnapshotError> {
        let meta = self.run_meta(protocol, inputs);
        let mut memo = SoloMemo::new();
        let mut write_error = None;
        let mut sink = |img: &SearchImage| {
            if write_error.is_none() {
                if let Err(e) = write_snapshot(path, &meta, img) {
                    write_error = Some(e);
                }
            }
            Control::Continue
        };
        let report = self
            .run_engine(
                protocol,
                inputs,
                &mut memo,
                None,
                Some(Checkpointing {
                    interval,
                    sink: &mut sink,
                }),
            )
            .expect("fresh runs cannot fail to resume");
        match write_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Resume a check from a snapshot file written by
    /// [`ModelChecker::check_with_snapshot_file`], continuing to snapshot to
    /// the same `path`. The stored [`RunMeta`] must match this checker's
    /// parameters; mismatches, corruption, version skew, and internally
    /// inconsistent images are all rejected with a typed error — never a
    /// panic, never a silent wrong verdict.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] for file/bytes-layer failures and meta mismatches;
    /// semantic [`ResumeError`]s surface as [`SnapshotError::Corrupt`].
    pub fn resume_from_file<P: Protocol>(
        &self,
        protocol: &P,
        inputs: &[u64],
        path: &Path,
        interval: usize,
    ) -> Result<CheckReport, SnapshotError> {
        let (meta, image) = read_snapshot(path)?;
        meta.ensure_matches(&self.run_meta(protocol, inputs))?;
        let current = self.run_meta(protocol, inputs);
        let mut memo = SoloMemo::new();
        let mut write_error = None;
        let mut sink = |img: &SearchImage| {
            if write_error.is_none() {
                if let Err(e) = write_snapshot(path, &current, img) {
                    write_error = Some(e);
                }
            }
            Control::Continue
        };
        let report = self
            .run_engine(
                protocol,
                inputs,
                &mut memo,
                Some(&image),
                Some(Checkpointing {
                    interval,
                    sink: &mut sink,
                }),
            )
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        match write_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Check every input assignment of the protocol's task (all `m^n`
    /// vectors; under symmetry reduction, one representative per input-orbit
    /// — validity and agreement are invariant under the protocol's declared
    /// renamings, so the skipped vectors cannot change the verdict). Returns
    /// the first failing report, or the last successful one with aggregate
    /// counts.
    pub fn check_all_inputs<P: Protocol>(&self, protocol: &P) -> CheckReport {
        let task = protocol.task();
        let symmetry = protocol.symmetry();
        let mut memo = SoloMemo::new();
        let mut aggregate = CheckReport {
            states: 0,
            terminal_states: 0,
            complete: true,
            deepest: 0,
            peak_frontier: 0,
            symmetry_group: 1,
            symmetry_degraded: false,
            hash_compaction: self.hash_compaction,
            solo_memo_hits: 0,
            deadline_truncated: false,
            paused: false,
            violation: None,
        };
        let mut inputs = vec![0u64; task.n];
        loop {
            if !self.symmetry_reduction || canon::inputs_are_canonical(&symmetry, &inputs) {
                let report = self.check_with_memo(protocol, &inputs, &mut memo);
                aggregate.states += report.states;
                aggregate.terminal_states += report.terminal_states;
                aggregate.complete &= report.complete;
                aggregate.deepest = aggregate.deepest.max(report.deepest);
                aggregate.peak_frontier = aggregate.peak_frontier.max(report.peak_frontier);
                aggregate.symmetry_group = aggregate.symmetry_group.max(report.symmetry_group);
                aggregate.symmetry_degraded |= report.symmetry_degraded;
                aggregate.solo_memo_hits += report.solo_memo_hits;
                aggregate.deadline_truncated |= report.deadline_truncated;
                aggregate.paused |= report.paused;
                if report.violation.is_some() {
                    aggregate.violation = report.violation;
                    return aggregate;
                }
            }
            // Advance the input vector like an odometer in base m.
            let mut i = 0;
            loop {
                if i == task.n {
                    return aggregate;
                }
                inputs[i] += 1;
                if inputs[i] < task.m {
                    break;
                }
                inputs[i] = 0;
                i += 1;
            }
        }
    }
}

/// The model checker's per-state strategy: safety predicates on every
/// visited configuration, plus the (memoized) solo-termination check.
struct CheckVisitor<'a, P: Protocol> {
    task: KSetTask,
    inputs: &'a [u64],
    solo_budget: Option<usize>,
    solo_memo: bool,
    memo: &'a mut SoloMemo<P>,
    /// Scratch configuration recycled between hypothetical solo runs.
    solo_scratch: Option<Configuration<P>>,
    solo_memo_hits: usize,
    violation: Option<FoundViolation>,
}

impl<P: Protocol> Visitor<P> for CheckVisitor<'_, P> {
    fn enter(
        &mut self,
        protocol: &P,
        config: &Configuration<P>,
        ctx: &NodeCtx<'_>,
        candidates: &[Action],
    ) -> Control {
        if let Some(v) = evaluate_state(
            &self.task,
            self.inputs,
            self.solo_budget,
            self.solo_memo,
            protocol,
            config,
            candidates,
            &mut *self.memo,
            &mut self.solo_scratch,
            &mut self.solo_memo_hits,
            &mut || ctx.actions(),
        ) {
            self.violation = Some(v);
            return Control::Stop;
        }
        Control::Continue
    }

    fn step_error(
        &mut self,
        _protocol: &P,
        error: crate::config::SimError,
        ctx: &mut EdgeCtx<'_>,
    ) -> Control {
        // The simulator rejected a step (or the protocol panicked inside
        // it, surfaced as [`crate::config::SimError::Panicked`] by the
        // engine's isolation): a protocol bug, reported with the schedule
        // that reaches it.
        self.violation = Some(FoundViolation {
            kind: ViolationKind::Internal(error.to_string()),
            schedule: ctx.actions(),
        });
        Control::Stop
    }
}

/// Per-worker strategy for the sharded sweep: the same per-state checks as
/// [`CheckVisitor`], with witnesses materialized from the sharded arenas
/// and solo-memo traffic routed through a thread-local [`LayeredMemo`].
struct ShardCheckVisitor<'a, P: Protocol> {
    task: KSetTask,
    inputs: &'a [u64],
    solo_budget: Option<usize>,
    solo_memo: bool,
    cache: LayeredMemo<'a, P>,
    solo_scratch: Option<Configuration<P>>,
    solo_memo_hits: usize,
    violation: Option<FoundViolation>,
}

impl<P: Protocol> ShardVisitor<P> for ShardCheckVisitor<'_, P> {
    fn enter(
        &mut self,
        protocol: &P,
        config: &Configuration<P>,
        witness: &WitnessRef<'_>,
        candidates: &[Action],
    ) -> Control {
        if let Some(v) = evaluate_state(
            &self.task,
            self.inputs,
            self.solo_budget,
            self.solo_memo,
            protocol,
            config,
            candidates,
            &mut self.cache,
            &mut self.solo_scratch,
            &mut self.solo_memo_hits,
            &mut || witness.actions(),
        ) {
            self.violation = Some(v);
            return Control::Stop;
        }
        Control::Continue
    }

    fn step_error(
        &mut self,
        _protocol: &P,
        error: crate::config::SimError,
        witness: &WitnessRef<'_>,
    ) -> Control {
        // Same contract as the sequential visitor's `step_error`.
        self.violation = Some(FoundViolation {
            kind: ViolationKind::Internal(error.to_string()),
            schedule: witness.actions(),
        });
        Control::Stop
    }
}

/// Per-state evaluation shared by the sequential and sharded checker
/// visitors.
///
/// First the safety predicates on the configuration, then (when
/// `solo_budget` is set) the obstruction-freedom check: every running
/// process decides solo. The solo outcome depends only on the process's
/// local state and the object values, so it is memoized on exactly that
/// key (with the visited sets' exact-fallback discipline); misses run on
/// the recycled scratch configuration, not a fresh clone. Under
/// [`AllRunning`] the step candidates are exactly the running processes;
/// crash candidates injected by [`CrashBounded`] are skipped — a crashed
/// process has no solo run to check. `witness` materializes the reaching
/// schedule only when a violation is actually reported.
#[allow(clippy::too_many_arguments)]
fn evaluate_state<P: Protocol>(
    task: &KSetTask,
    inputs: &[u64],
    solo_budget: Option<usize>,
    use_memo: bool,
    protocol: &P,
    config: &Configuration<P>,
    candidates: &[Action],
    cache: &mut dyn SoloCache<P>,
    solo_scratch: &mut Option<Configuration<P>>,
    solo_memo_hits: &mut usize,
    witness: &mut dyn FnMut() -> Vec<Action>,
) -> Option<FoundViolation> {
    if let Err(v) = task.check_decisions(inputs, config.decisions_iter()) {
        return Some(FoundViolation {
            kind: ViolationKind::Task(v),
            schedule: witness(),
        });
    }
    if let Some(budget) = solo_budget {
        for pid in candidates.iter().filter_map(|a| match *a {
            Action::Step(p) => Some(p),
            Action::Crash(_) => None,
        }) {
            let state = config.state(pid).expect("running implies a state");
            let outcome = match use_memo.then(|| cache.lookup(state, config)).flatten() {
                Some(cached) => {
                    *solo_memo_hits += 1;
                    cached
                }
                None => {
                    let scratch = match solo_scratch {
                        Some(s) => {
                            s.clone_state_from(config);
                            s
                        }
                        None => solo_scratch.insert(config.clone()),
                    };
                    let outcome = match solo_run(protocol, scratch, pid, budget) {
                        Ok(_) => SoloVerdict::Decides,
                        Err(SoloRunError::BudgetExhausted { .. }) => SoloVerdict::Stuck,
                        Err(e) => SoloVerdict::Error(Arc::from(e.to_string().as_str())),
                    };
                    if use_memo {
                        cache.store(state.clone(), config, outcome.clone());
                    }
                    outcome
                }
            };
            match outcome {
                SoloVerdict::Decides => {}
                SoloVerdict::Stuck => {
                    return Some(FoundViolation {
                        kind: ViolationKind::SoloTermination { pid, budget },
                        schedule: witness(),
                    });
                }
                SoloVerdict::Error(msg) => {
                    return Some(FoundViolation {
                        kind: ViolationKind::Internal(msg.to_string()),
                        schedule: witness(),
                    });
                }
            }
        }
    }
    None
}

/// Deterministically pick between two candidate violations: kind rank
/// (task violations strongest), then schedule length, then lexicographic
/// comparison of the schedules. Sharded workers race to different
/// witnesses; this merge makes the reported one independent of thread
/// scheduling whenever the same set of violations is found.
fn merge_violations(
    a: Option<FoundViolation>,
    b: Option<FoundViolation>,
) -> Option<FoundViolation> {
    fn kind_rank(kind: &ViolationKind) -> u8 {
        match kind {
            ViolationKind::Task(_) => 0,
            ViolationKind::SoloTermination { .. } => 1,
            ViolationKind::WaitFree { .. } => 2,
            ViolationKind::Internal(_) => 3,
        }
    }
    fn schedule_key(schedule: &[Action]) -> Vec<(bool, usize)> {
        schedule
            .iter()
            .map(|a| (matches!(a, Action::Crash(_)), a.pid().0))
            .collect()
    }
    match (a, b) {
        (None, other) | (other, None) => other,
        (Some(x), Some(y)) => {
            let keep_x = (
                kind_rank(&x.kind),
                x.schedule.len(),
                schedule_key(&x.schedule),
            ) <= (
                kind_rank(&y.kind),
                y.schedule.len(),
                schedule_key(&y.schedule),
            );
            Some(if keep_x { x } else { y })
        }
    }
}

/// Memoized outcome of one solo run.
#[derive(Clone, Debug, PartialEq, Eq)]
enum SoloVerdict {
    /// Decided within the budget.
    Decides,
    /// Exhausted the budget (an obstruction-freedom violation within the
    /// explored region).
    Stuck,
    /// The simulator rejected a step (protocol bug); shared message.
    Error(Arc<str>),
}

/// Memo of solo-run outcomes keyed on `(local state, object values)` — the
/// complete determinants of a solo execution (the paper's solo runs read
/// nothing else), so the cache is sound by construction. Same discipline as
/// the visited sets: an FxHash fingerprint selects a bucket, exact equality
/// on the key decides a hit, so correctness never rests on hash quality.
/// Object vectors are stored as copy-on-write handles (refcount bumps, no
/// value copies).
/// One memo entry: the solo-determining key plus the cached verdict.
type SoloMemoEntry<P> = (
    <P as Protocol>::State,
    Arc<[<P as Protocol>::Value]>,
    SoloVerdict,
);

struct SoloMemo<P: Protocol> {
    buckets: PrehashedMap<Vec<SoloMemoEntry<P>>>,
}

impl<P: Protocol> SoloMemo<P> {
    fn new() -> Self {
        SoloMemo {
            buckets: PrehashedMap::default(),
        }
    }

    fn key(state: &P::State, config: &Configuration<P>) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = fxhash::FxHasher::default();
        state.hash(&mut h);
        config.object_values().hash(&mut h);
        h.finish()
    }

    fn get(&self, state: &P::State, config: &Configuration<P>) -> Option<SoloVerdict> {
        let bucket = self.buckets.get(&Self::key(state, config))?;
        bucket
            .iter()
            .find(|(s, objects, _)| s == state && objects[..] == *config.object_values())
            .map(|(_, _, verdict)| verdict.clone())
    }

    fn put(&mut self, state: P::State, config: &Configuration<P>, verdict: SoloVerdict) {
        self.buckets
            .entry(Self::key(&state, config))
            .or_default()
            .push((state, Arc::clone(config.objects_handle()), verdict));
    }

    /// Fold another memo into this one (absorbing a sharded worker's local
    /// overlay after the join). Keys already present keep their entry: the
    /// verdict for a given key is deterministic, so which copy survives is
    /// immaterial.
    fn merge(&mut self, other: SoloMemo<P>) {
        for (key, entries) in other.buckets {
            let bucket = self.buckets.entry(key).or_default();
            for (state, objects, verdict) in entries {
                if !bucket
                    .iter()
                    .any(|(s, o, _)| *s == state && o[..] == objects[..])
                {
                    bucket.push((state, objects, verdict));
                }
            }
        }
    }
}

/// Solo-memo access abstracted over the sequential visitor (one mutable
/// memo) and the sharded workers (a shared read-only base under a
/// thread-local overlay).
trait SoloCache<P: Protocol> {
    fn lookup(&self, state: &P::State, config: &Configuration<P>) -> Option<SoloVerdict>;
    fn store(&mut self, state: P::State, config: &Configuration<P>, verdict: SoloVerdict);
}

impl<P: Protocol> SoloCache<P> for SoloMemo<P> {
    fn lookup(&self, state: &P::State, config: &Configuration<P>) -> Option<SoloVerdict> {
        self.get(state, config)
    }

    fn store(&mut self, state: P::State, config: &Configuration<P>, verdict: SoloVerdict) {
        self.put(state, config, verdict);
    }
}

/// Two-level solo memo for sharded workers: lookups consult the shared
/// base (results accumulated by earlier runs or inputs) and then the
/// worker-local overlay; new verdicts land in the overlay only, so workers
/// never contend on the memo. [`SoloMemo::merge`] folds overlays back into
/// the base after the join.
struct LayeredMemo<'a, P: Protocol> {
    base: &'a SoloMemo<P>,
    local: SoloMemo<P>,
}

impl<P: Protocol> SoloCache<P> for LayeredMemo<'_, P> {
    fn lookup(&self, state: &P::State, config: &Configuration<P>) -> Option<SoloVerdict> {
        self.base
            .get(state, config)
            .or_else(|| self.local.get(state, config))
    }

    fn store(&mut self, state: P::State, config: &Configuration<P>, verdict: SoloVerdict) {
        self.local.put(state, config, verdict);
    }
}

/// Result of a model-checking run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Distinct configurations visited.
    pub states: usize,
    /// Configurations in which every process has decided.
    pub terminal_states: usize,
    /// `true` if no depth/state/frontier cutoff discarded work: the search
    /// was exhaustive. Draining the stack *exactly* at the state budget
    /// without skipping anything still counts as exhaustive.
    pub complete: bool,
    /// Length of the longest schedule explored.
    pub deepest: usize,
    /// Largest pending-frontier size observed (memory high-water mark).
    pub peak_frontier: usize,
    /// Order of the symmetry group the visited set deduplicated by (1 = no
    /// reduction; `states` then counts orbits, not raw configurations).
    pub symmetry_group: usize,
    /// Whether the dedup group is a **degraded subgroup** of the protocol's
    /// declared symmetry — the declaration exceeded
    /// [`MAX_GROUP_ORDER`](crate::canon::MAX_GROUP_ORDER) (a maximal
    /// subgroup under the cap was kept) or was inconsistent with the
    /// instance (trivial group). The verdict stays sound either way; the
    /// flag exists so a declared-but-lost reduction is reported, like
    /// `hash_compaction` is, instead of silently running wider than
    /// declared.
    pub symmetry_degraded: bool,
    /// Whether the (unsound, opt-in) hash-compaction mode was active — if
    /// so, a passing verdict is probabilistic and never a safety proof.
    pub hash_compaction: bool,
    /// Solo-termination checks answered from the memo instead of re-run.
    pub solo_memo_hits: usize,
    /// The wall-clock deadline expired with work still pending. Recoverable
    /// with checkpoint/resume, unlike the hard budget cutoffs.
    pub deadline_truncated: bool,
    /// A checkpoint sink paused the run ([`ModelChecker::check_paused`]);
    /// hand the returned image to [`ModelChecker::resume`] to finish.
    pub paused: bool,
    /// The first violation found, if any, with a witnessing schedule.
    pub violation: Option<FoundViolation>,
}

impl CheckReport {
    /// Whether the check passed (no violation found).
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }

    /// Whether the check passed *and* explored the full reachable space
    /// *and* used exact state dedup — a hash-compacted run can never prove
    /// safety, no matter how it went.
    pub fn proves_safety(&self) -> bool {
        self.passed() && self.complete && !self.hash_compaction
    }

    /// Whether two runs reached the same *verdict*: same pass/fail, same
    /// exhaustiveness, and (when violating) the same kind of violation.
    /// State counts are deliberately excluded — a symmetry-reduced run
    /// explores fewer states by design; the point is that it concludes the
    /// same thing.
    pub fn same_verdict(&self, other: &CheckReport) -> bool {
        self.passed() == other.passed()
            && self.complete == other.complete
            && match (&self.violation, &other.violation) {
                (None, None) => true,
                (Some(a), Some(b)) => {
                    std::mem::discriminant(&a.kind) == std::mem::discriminant(&b.kind)
                }
                _ => false,
            }
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states ({} terminal), deepest schedule {}, {}{}{}{}",
            self.states,
            self.terminal_states,
            self.deepest,
            match (&self.violation, self.complete) {
                (Some(v), _) => format!("VIOLATION: {v}"),
                (None, true) => "exhaustive, no violations".to_string(),
                (None, false) if self.paused => "paused (resumable), no violations".to_string(),
                (None, false) if self.deadline_truncated => {
                    "deadline expired (resumable), no violations".to_string()
                }
                (None, false) => "bounded (cutoff hit), no violations".to_string(),
            },
            if self.symmetry_group > 1 {
                format!(" [symmetry-reduced /{}]", self.symmetry_group)
            } else {
                String::new()
            },
            if self.symmetry_degraded {
                " [symmetry-degraded: declared group exceeds the cap]"
            } else {
                ""
            },
            if self.hash_compaction {
                " [hash-compacted: probabilistic]"
            } else {
                ""
            }
        )
    }
}

/// A violation discovered by the model checker, with the schedule that
/// reaches the violating configuration from the initial one.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The witnessing schedule from the initial configuration: steps and —
    /// under crash injection — crash transitions (`†p` in debug output).
    /// Replay it with [`crate::runner::replay_actions`].
    pub schedule: Vec<Action>,
}

impl fmt::Display for FoundViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} via schedule {:?}", self.kind, self.schedule)
    }
}

/// Kinds of model-checking violations.
#[derive(Clone, Debug)]
pub enum ViolationKind {
    /// A task safety predicate failed (agreement or validity).
    Task(TaskViolation),
    /// A process failed to decide within the solo budget
    /// (obstruction-freedom violation within the explored region).
    SoloTermination {
        /// The stuck process.
        pid: ProcessId,
        /// The exhausted budget.
        budget: usize,
    },
    /// A process can be kept undecided past its wait-freedom bound by a
    /// schedule of the *other* processes (possibly crashing some of them):
    /// the protocol is not wait-free with this bound. The witnessing
    /// schedule is minimal in length (BFS order).
    WaitFree {
        /// The starved process.
        pid: ProcessId,
        /// The own-step bound it exceeded without deciding.
        bound: usize,
    },
    /// The simulator rejected a step (protocol bug, e.g. schema violation).
    Internal(String),
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Task(v) => write!(f, "task violation: {v}"),
            ViolationKind::SoloTermination { pid, budget } => {
                write!(f, "{pid} did not decide within {budget} solo steps")
            }
            ViolationKind::WaitFree { pid, bound } => {
                write!(
                    f,
                    "{pid} kept undecided beyond {bound} of its own steps (not wait-free)"
                )
            }
            ViolationKind::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

/// Exhaustive wait-freedom check for one instance: for every process `p`,
/// search the product space of (configuration, number of own steps `p` has
/// taken while undecided) under the full adversary — any running process may
/// step, and any running process other than `p` may crash while fewer than
/// `max_failures` have crashed. A state where `p` is still undecided after
/// `bound` own steps is a counterexample; reaching `p`'s decision prunes the
/// branch. BFS order makes the returned witness schedule minimal in length.
///
/// Soundness of the pruning: whether `p` can be starved from a
/// configuration depends only on the configuration and on how many own
/// steps `p` has already spent, and more spent steps is strictly worse for
/// `p` — so per configuration only the *maximum* `j` seen needs expanding
/// (max-`j` dominance), keyed by [`Configuration::fingerprint`] with an
/// exact-equality fallback (hash quality never decides the verdict).
///
/// Returns the first counterexample (or `None`) plus a completeness flag:
/// `false` means the `max_states` budget cut the product search short and a
/// clean verdict is only a bounded certificate.
fn wait_free_counterexample<P: Protocol>(
    protocol: &P,
    initial: &Configuration<P>,
    bound: usize,
    max_failures: usize,
    max_states: usize,
) -> (Option<FoundViolation>, bool) {
    let n = initial.num_processes();
    let mut complete = true;
    let mut visited_total = 0usize;
    for p in (0..n).map(ProcessId) {
        if initial.decision(p).is_some() {
            continue;
        }
        // Dominance map: fingerprint bucket -> (config, max own-steps seen).
        let mut seen: PrehashedMap<Vec<(Configuration<P>, usize)>> = PrehashedMap::default();
        let mut arena = ScheduleArena::new();
        let mut queue: VecDeque<(Configuration<P>, usize, crate::search::NodeId)> = VecDeque::new();
        queue.push_back((initial.clone(), 0, ScheduleArena::ROOT));
        seen.entry(initial.fingerprint())
            .or_default()
            .push((initial.clone(), 0));
        let mut running = Vec::new();
        while let Some((config, own, node)) = queue.pop_front() {
            visited_total += 1;
            if visited_total > max_states {
                complete = false;
                break;
            }
            if config.decision(p).is_some() {
                continue; // `p` decided on this branch: wait-freedom held.
            }
            if own >= bound {
                return (
                    Some(FoundViolation {
                        kind: ViolationKind::WaitFree { pid: p, bound },
                        schedule: arena.actions(node),
                    }),
                    complete,
                );
            }
            config.running_into(&mut running);
            let crash_allowed = config.num_crashed() < max_failures;
            for &q in &running {
                let mut child = config.clone();
                if child
                    .step_quiet(protocol, q)
                    .expect("wait-free search stepped a running process")
                    .is_some()
                    && q == p
                {
                    continue; // `p` just decided: nothing left to starve.
                }
                let own_after = own + usize::from(q == p);
                if dominates_insert(&mut seen, &child, own_after) {
                    let child_node = arena.child(node, q);
                    queue.push_back((child, own_after, child_node));
                }
                if crash_allowed && q != p {
                    let mut crashed = config.clone();
                    crashed
                        .crash(q)
                        .expect("wait-free search crashed a running process");
                    if dominates_insert(&mut seen, &crashed, own) {
                        let crash_node = arena.child_action(node, Action::Crash(q));
                        queue.push_back((crashed, own, crash_node));
                    }
                }
            }
        }
    }
    (None, complete)
}

/// Insert `(config, own)` into the wait-free dominance map unless an entry
/// with the same configuration and `own' >= own` is already present.
/// Returns whether the entry was new (i.e. worth expanding).
fn dominates_insert<P: Protocol>(
    seen: &mut PrehashedMap<Vec<(Configuration<P>, usize)>>,
    config: &Configuration<P>,
    own: usize,
) -> bool {
    let bucket = seen.entry(config.fingerprint()).or_default();
    for (existing, max_own) in bucket.iter_mut() {
        if existing == config {
            if *max_own >= own {
                return false;
            }
            *max_own = own;
            return true;
        }
    }
    bucket.push((config.clone(), own));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{SelfishConsensus, TwoProcessSwapConsensus};

    #[test]
    fn two_process_consensus_is_exhaustively_safe() {
        let report = ModelChecker::new(10, 10_000)
            .with_solo_budget(4)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.proves_safety(), "{report}");
        assert!(report.terminal_states > 0);
    }

    #[test]
    fn two_process_consensus_all_inputs() {
        // 16^2 input vectors, each fully explored.
        let report = ModelChecker::new(10, 10_000).check_all_inputs(&TwoProcessSwapConsensus);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn selfish_consensus_caught_with_witness() {
        let report = ModelChecker::new(10, 10_000).check(&SelfishConsensus { n: 2 }, &[0, 1]);
        assert!(report.to_string().contains("VIOLATION"));
        let violation = report
            .violation
            .expect("must catch the agreement violation");
        assert!(matches!(
            violation.kind,
            ViolationKind::Task(TaskViolation::Agreement { .. })
        ));
        assert!(!violation.schedule.is_empty());
    }

    #[test]
    fn selfish_consensus_with_equal_inputs_passes() {
        // With equal inputs the broken protocol cannot disagree.
        let report = ModelChecker::new(10, 10_000).check(&SelfishConsensus { n: 2 }, &[1, 1]);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn cutoffs_mark_report_incomplete() {
        let report = ModelChecker::new(1, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.passed());
        assert!(!report.complete, "depth 1 cannot cover 2-step executions");
        assert!(!report.proves_safety());
    }

    #[test]
    fn exact_state_budget_is_still_exhaustive() {
        // Calibrate: how many states does the full space have?
        let full = ModelChecker::new(10, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(full.proves_safety(), "{full}");
        // A budget of exactly that many states drains the stack at the
        // bound without skipping anything: the verdict must stay
        // "exhaustive", not a spurious "bounded".
        let exact = ModelChecker::new(10, full.states).check(&TwoProcessSwapConsensus, &[0, 1]);
        assert_eq!(exact.states, full.states);
        assert!(
            exact.complete,
            "search that drains exactly at the bound is exhaustive: {exact}"
        );
        // One state fewer genuinely truncates.
        let under = ModelChecker::new(10, full.states - 1).check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(!under.complete, "{under}");
        assert!(under.states < full.states);
    }

    #[test]
    fn frontier_budget_degrades_predictably() {
        let unbounded = ModelChecker::new(10, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(unbounded.peak_frontier >= 2, "{unbounded}");
        // A frontier of 1 cannot hold both children of the initial
        // configuration: the search must finish, report incomplete, and
        // respect the bound.
        let bounded = ModelChecker::new(10, 10_000)
            .with_frontier_budget(1)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(bounded.passed());
        assert!(
            !bounded.complete,
            "dropped frontier entries must be reported"
        );
        assert!(bounded.peak_frontier <= 1, "{bounded}");
        assert!(bounded.states < unbounded.states);
    }

    #[test]
    fn state_dedup_keeps_counts_small() {
        // Both schedules of the 2-process protocol converge; visited-state
        // dedup should keep the total tiny.
        let report = ModelChecker::new(10, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.states <= 8, "states = {}", report.states);
    }

    #[test]
    fn symmetry_reduction_same_verdict_fewer_states() {
        // The hand-computable orbit count: TwoProcessSwapConsensus from
        // [0, 1] reaches 5 configurations — initial, two mids (one process
        // decided), two terminals (winner 0 or winner 1). The swap-both
        // renaming pairs up the mids and pairs up the terminals, so the
        // quotient has 3 orbits.
        let full = ModelChecker::new(10, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        let reduced = ModelChecker::new(10, 10_000)
            .with_symmetry_reduction()
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert_eq!(full.states, 5, "{full}");
        assert_eq!(reduced.states, 3, "{reduced}");
        assert_eq!(reduced.symmetry_group, 2);
        assert!(full.same_verdict(&reduced));
        assert!(reduced.proves_safety(), "{reduced}");
        // Unanimous inputs: one terminal only (4 full states), mids still
        // pair up — 3 orbits again.
        let full = ModelChecker::new(10, 10_000).check(&TwoProcessSwapConsensus, &[5, 5]);
        let reduced = ModelChecker::new(10, 10_000)
            .with_symmetry_reduction()
            .check(&TwoProcessSwapConsensus, &[5, 5]);
        assert_eq!((full.states, reduced.states), (4, 3));
        assert!(full.same_verdict(&reduced));
    }

    #[test]
    fn symmetry_reduction_collapses_input_orbits() {
        // 16^2 = 256 input vectors; modulo process + value renaming exactly
        // two orbits remain ([0,0] and [0,1]).
        let full = ModelChecker::new(10, 10_000).check_all_inputs(&TwoProcessSwapConsensus);
        let reduced = ModelChecker::new(10, 10_000)
            .with_symmetry_reduction()
            .check_all_inputs(&TwoProcessSwapConsensus);
        assert!(full.same_verdict(&reduced));
        assert!(reduced.proves_safety(), "{reduced}");
        assert_eq!(reduced.states, 3 + 3, "two input orbits, three orbits each");
        assert!(full.states >= 40 * reduced.states, "{full} vs {reduced}");
    }

    #[test]
    fn symmetry_reduction_still_catches_violations() {
        let full = ModelChecker::new(10, 10_000).check(&SelfishConsensus { n: 2 }, &[0, 1]);
        let reduced = ModelChecker::new(10, 10_000)
            .with_symmetry_reduction()
            .check(&SelfishConsensus { n: 2 }, &[0, 1]);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        let violation = reduced.violation.expect("agreement violation");
        assert!(matches!(
            violation.kind,
            ViolationKind::Task(TaskViolation::Agreement { .. })
        ));
        // The witness schedule is a REAL schedule: replaying it from the
        // initial configuration reproduces the violation.
        let mut replay = Configuration::initial(&SelfishConsensus { n: 2 }, &[0, 1]).unwrap();
        crate::runner::replay_actions(&SelfishConsensus { n: 2 }, &mut replay, &violation.schedule)
            .unwrap();
        assert_eq!(replay.decided_values().len(), 2, "violation reproduced");
    }

    #[test]
    fn over_cap_declaration_is_reported_not_silent() {
        // SelfishConsensus at n=8 declares S8 x S2 (order 80640), far over
        // MAX_GROUP_ORDER. The checker must degrade to a subgroup under the
        // cap (the S7 prefix, order 5040) and *say so* in the report — a
        // silently-unreduced run would look identical to a reduced one on a
        // passing verdict.
        let p = SelfishConsensus { n: 8 };
        let inputs = [1u64; 8];
        let full = ModelChecker::new(10, 10_000).check(&p, &inputs);
        let reduced = ModelChecker::new(10, 10_000)
            .with_symmetry_reduction()
            .check(&p, &inputs);
        assert!(reduced.symmetry_degraded, "{reduced}");
        assert_eq!(reduced.symmetry_group, 5040, "{reduced}");
        assert!(
            reduced.to_string().contains("symmetry-degraded"),
            "{reduced}"
        );
        // The degraded subgroup is still a genuine symmetry: same verdict,
        // fewer states than the unreduced run.
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert!(reduced.proves_safety(), "{reduced}");
        assert!(reduced.states < full.states, "{full} vs {reduced}");
        // Violations survive the degrade too.
        let bad = ModelChecker::new(10, 10_000)
            .with_symmetry_reduction()
            .check(&p, &[0, 1, 1, 1, 1, 1, 1, 1]);
        assert!(bad.symmetry_degraded);
        assert!(bad.violation.is_some(), "{bad}");
        // An undegraded protocol never sets the flag.
        let clean = ModelChecker::new(10, 10_000)
            .with_symmetry_reduction()
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(!clean.symmetry_degraded, "{clean}");
    }

    #[test]
    fn hash_compaction_is_reported_and_never_proves_safety() {
        let report = ModelChecker::new(10, 10_000)
            .unsound_hash_compaction()
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.hash_compaction);
        assert!(report.passed());
        assert!(report.complete);
        assert!(
            !report.proves_safety(),
            "a compacted run must never claim proof: {report}"
        );
        assert!(report.to_string().contains("hash-compacted"));
        // Plain runs are unaffected.
        let exact = ModelChecker::new(10, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(!exact.hash_compaction);
        assert!(exact.proves_safety());
    }

    #[test]
    fn solo_memo_hits_accumulate_without_changing_the_verdict() {
        // Equal inputs give both processes identical (state, objects) keys,
        // so the second solo check of every configuration is a memo hit.
        let with_memo = ModelChecker::new(10, 10_000)
            .with_solo_budget(4)
            .check(&TwoProcessSwapConsensus, &[1, 1]);
        let without = ModelChecker::new(10, 10_000)
            .with_solo_budget(4)
            .without_solo_memo()
            .check(&TwoProcessSwapConsensus, &[1, 1]);
        assert!(with_memo.same_verdict(&without));
        assert_eq!(with_memo.states, without.states);
        assert!(with_memo.solo_memo_hits > 0, "{with_memo}");
        assert_eq!(without.solo_memo_hits, 0);
        // A memoized run still catches solo violations.
        let stuck = ModelChecker::new(10, 10_000)
            .with_solo_budget(0)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(matches!(
            stuck.violation.as_ref().map(|v| &v.kind),
            Some(ViolationKind::SoloTermination { .. })
        ));
    }

    #[test]
    fn solo_budget_violation_detected() {
        // With a budget of 0 steps, nobody can decide: every configuration
        // with a running process violates the solo check.
        let report = ModelChecker::new(10, 10_000)
            .with_solo_budget(0)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        let v = report.violation.expect("budget 0 must be violated");
        assert!(matches!(
            v.kind,
            ViolationKind::SoloTermination { budget: 0, .. }
        ));
    }

    #[test]
    fn crash_injection_explores_strictly_more_states() {
        // With f = 1 the search additionally reaches every configuration
        // with one crashed process; with f = 0 it is exactly the
        // failure-free search.
        let plain = ModelChecker::new(10, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        let crashy = ModelChecker::new(10, 10_000)
            .with_max_failures(1)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(plain.proves_safety() && crashy.proves_safety());
        assert!(
            crashy.states > plain.states,
            "crash patterns must add states: {} vs {}",
            crashy.states,
            plain.states
        );
        let zero = ModelChecker::new(10, 10_000)
            .with_max_failures(0)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert_eq!(zero.states, plain.states, "f = 0 is the identity");
    }

    #[test]
    fn crash_injection_with_symmetry_reduction_has_verdict_parity() {
        let full = ModelChecker::new(10, 10_000)
            .with_max_failures(1)
            .with_solo_budget(4)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        let reduced = ModelChecker::new(10, 10_000)
            .with_max_failures(1)
            .with_solo_budget(4)
            .with_symmetry_reduction()
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
        assert!(reduced.proves_safety(), "{reduced}");
        assert!(
            reduced.states < full.states,
            "crashed-set-aware renamings still reduce: {full} vs {reduced}"
        );
    }

    #[test]
    fn crash_violation_witness_replays_with_actions() {
        // The broken protocol still violates agreement under crash
        // injection, and the witness — an Action schedule, possibly with
        // crash transitions — replays to the violation.
        let report = ModelChecker::new(10, 50_000)
            .with_max_failures(1)
            .check(&SelfishConsensus { n: 2 }, &[0, 1]);
        let violation = report.violation.expect("agreement violation");
        let mut replay = Configuration::initial(&SelfishConsensus { n: 2 }, &[0, 1]).unwrap();
        crate::runner::replay_actions(&SelfishConsensus { n: 2 }, &mut replay, &violation.schedule)
            .unwrap();
        assert_eq!(replay.decided_values().len(), 2, "violation reproduced");
    }

    #[test]
    fn two_process_consensus_is_wait_free_even_under_a_crash() {
        // The paper's base fact: one swap object solves 2-process
        // consensus *wait-free* — every process decides within exactly one
        // of its own steps under any schedule and any single crash.
        let report = ModelChecker::new(10, 10_000)
            .with_max_failures(1)
            .with_wait_free_bound(1)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn wait_free_bound_zero_is_immediately_violated() {
        // Degenerate pin of the semantics: with a bound of 0 own steps,
        // the initial configuration itself is the (empty-schedule, minimal)
        // counterexample for the first undecided process.
        let report = ModelChecker::new(10, 10_000)
            .with_wait_free_bound(0)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.to_string().contains("not wait-free"), "{report}");
        let v = report.violation.expect("bound 0 must be violated");
        match &v.kind {
            ViolationKind::WaitFree { pid, bound } => {
                assert_eq!((*pid, *bound), (ProcessId(0), 0));
            }
            other => panic!("expected a wait-freedom violation, got {other}"),
        }
        assert!(v.schedule.is_empty(), "BFS witness is minimal");
    }

    #[test]
    fn zero_deadline_reports_resumable_truncation() {
        let report = ModelChecker::new(10, 10_000)
            .with_deadline(Duration::ZERO)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.passed());
        assert!(report.deadline_truncated, "{report}");
        assert!(!report.complete);
        assert!(!report.proves_safety());
        assert!(report.to_string().contains("deadline expired"), "{report}");
    }

    #[test]
    fn checker_pause_and_resume_have_verdict_and_count_parity() {
        let checker = ModelChecker::new(10, 10_000)
            .with_solo_budget(4)
            .with_max_failures(1);
        let baseline = checker.check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(baseline.proves_safety(), "{baseline}");
        let (partial, image) = checker.check_paused(&TwoProcessSwapConsensus, &[0, 1], 2);
        assert!(partial.paused, "{partial}");
        assert!(partial.states < baseline.states);
        assert!(partial.to_string().contains("paused"), "{partial}");
        let image = image.expect("paused run must yield an image");
        let resumed = checker
            .resume(&TwoProcessSwapConsensus, &[0, 1], &image)
            .unwrap();
        assert!(baseline.same_verdict(&resumed), "{baseline} vs {resumed}");
        assert_eq!(resumed.states, baseline.states, "state-count parity");
        assert_eq!(resumed.terminal_states, baseline.terminal_states);
        assert_eq!(resumed.deepest, baseline.deepest);
        assert!(resumed.proves_safety(), "{resumed}");
    }

    #[test]
    fn checker_pause_and_resume_parity_under_symmetry_reduction() {
        // The subtle half of the parity guarantee: resuming re-inserts the
        // discovered configurations in discovery order, so the quotient
        // search picks the same orbit representatives and the resumed
        // verdict and orbit counts match the uninterrupted run exactly.
        let checker = ModelChecker::new(10, 10_000)
            .with_max_failures(1)
            .with_symmetry_reduction();
        let baseline = checker.check(&TwoProcessSwapConsensus, &[0, 1]);
        let (partial, image) = checker.check_paused(&TwoProcessSwapConsensus, &[0, 1], 2);
        assert!(partial.paused);
        let resumed = checker
            .resume(&TwoProcessSwapConsensus, &[0, 1], &image.unwrap())
            .unwrap();
        assert_eq!(resumed.states, baseline.states);
        assert!(baseline.same_verdict(&resumed));
        assert_eq!(resumed.symmetry_group, baseline.symmetry_group);
    }

    #[test]
    fn snapshot_file_checkpointing_and_file_resume() {
        let dir = std::env::temp_dir().join(format!("swck-explore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checker.swck");
        let checker = ModelChecker::new(10, 10_000).with_max_failures(1);
        let baseline = checker.check(&TwoProcessSwapConsensus, &[0, 1]);
        let filed = checker
            .check_with_snapshot_file(&TwoProcessSwapConsensus, &[0, 1], &path, 2)
            .unwrap();
        assert!(baseline.same_verdict(&filed));
        assert_eq!(filed.states, baseline.states);
        assert!(path.exists(), "snapshots were written");
        // Resuming from the last on-disk snapshot re-runs the tail and
        // reaches the identical verdict and counts.
        let resumed = checker
            .resume_from_file(&TwoProcessSwapConsensus, &[0, 1], &path, 2)
            .unwrap();
        assert!(baseline.same_verdict(&resumed));
        assert_eq!(resumed.states, baseline.states);
        // A checker with different parameters refuses the snapshot.
        let other = ModelChecker::new(10, 9_999).with_max_failures(1);
        let err = other
            .resume_from_file(&TwoProcessSwapConsensus, &[0, 1], &path, 2)
            .unwrap_err();
        assert!(matches!(err, SnapshotError::MetaMismatch(_)), "got {err:?}");
        // So does one over different inputs.
        let err = checker
            .resume_from_file(&TwoProcessSwapConsensus, &[1, 0], &path, 2)
            .unwrap_err();
        assert!(matches!(err, SnapshotError::MetaMismatch(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Everything `same_verdict` compares plus the exact counters that must
    /// agree between a sequential and a sharded complete run.
    #[allow(clippy::type_complexity)]
    fn full_parity_view(
        r: &CheckReport,
    ) -> (bool, usize, usize, bool, usize, usize, bool, bool, bool) {
        (
            r.passed(),
            r.states,
            r.terminal_states,
            r.complete,
            r.deepest,
            r.symmetry_group,
            r.symmetry_degraded,
            r.deadline_truncated,
            r.paused,
        )
    }

    #[test]
    fn sharded_checker_matches_sequential_report() {
        for symmetry in [false, true] {
            let mut base = ModelChecker::new(10, 10_000)
                .with_solo_budget(4)
                .with_max_failures(1);
            base.symmetry_reduction = symmetry;
            let sequential = base.check(&TwoProcessSwapConsensus, &[0, 1]);
            assert!(sequential.proves_safety(), "{sequential}");
            for threads in [2, 4] {
                let sharded = base
                    .with_threads(threads)
                    .check(&TwoProcessSwapConsensus, &[0, 1]);
                assert_eq!(
                    full_parity_view(&sharded),
                    full_parity_view(&sequential),
                    "threads={threads} symmetry={symmetry}"
                );
            }
        }
    }

    #[test]
    fn sharded_checker_catches_the_same_violation_kind() {
        let sequential = ModelChecker::new(10, 10_000).check(&SelfishConsensus { n: 2 }, &[0, 1]);
        let sharded = ModelChecker::new(10, 10_000)
            .with_threads(2)
            .check(&SelfishConsensus { n: 2 }, &[0, 1]);
        let seq_kind = sequential.violation.expect("sequential catches it").kind;
        let shard_kind = sharded.violation.expect("sharded catches it").kind;
        assert!(matches!(
            (&seq_kind, &shard_kind),
            (
                ViolationKind::Task(TaskViolation::Agreement { .. }),
                ViolationKind::Task(TaskViolation::Agreement { .. })
            )
        ));
    }

    #[test]
    fn sharded_solo_memo_survives_the_join() {
        // Two back-to-back sharded checks share one memo through
        // `check_with_memo`'s caller — `check_all_inputs` exercises that
        // path; here the merged overlays must produce hits on the second
        // run of the identical input vector.
        let checker = ModelChecker::new(10, 10_000)
            .with_solo_budget(4)
            .with_threads(2);
        let mut memo = SoloMemo::new();
        let first = checker
            .run_engine(&TwoProcessSwapConsensus, &[0, 1], &mut memo, None, None)
            .unwrap();
        let second = checker
            .run_engine(&TwoProcessSwapConsensus, &[0, 1], &mut memo, None, None)
            .unwrap();
        assert!(first.proves_safety() && second.proves_safety());
        assert!(
            second.solo_memo_hits > first.solo_memo_hits,
            "first={} second={}",
            first.solo_memo_hits,
            second.solo_memo_hits
        );
    }

    #[test]
    fn sharded_check_all_inputs_matches_sequential() {
        let sequential = ModelChecker::new(10, 10_000)
            .with_solo_budget(4)
            .check_all_inputs(&TwoProcessSwapConsensus);
        let sharded = ModelChecker::new(10, 10_000)
            .with_solo_budget(4)
            .with_threads(2)
            .check_all_inputs(&TwoProcessSwapConsensus);
        assert_eq!(full_parity_view(&sharded), full_parity_view(&sequential));
    }

    #[test]
    fn sharded_pause_resumes_to_the_sequential_report() {
        let sequential = ModelChecker::new(10, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        let checker = ModelChecker::new(10, 10_000).with_threads(2);
        let (partial, image) = checker.check_paused(&TwoProcessSwapConsensus, &[0, 1], 2);
        let image = image.expect("2 states pauses well before the end");
        assert!(partial.paused && !partial.complete);
        assert!(partial.states < sequential.states);
        // The resumed leg runs sequentially (FIFO) over the drained waves
        // and lands on the exact sequential totals.
        let resumed = checker
            .resume(&TwoProcessSwapConsensus, &[0, 1], &image)
            .unwrap();
        assert_eq!(full_parity_view(&resumed), full_parity_view(&sequential));
    }

    #[test]
    fn sharded_zero_deadline_reports_an_empty_truncated_run() {
        let report = ModelChecker::new(10, 10_000)
            .with_threads(2)
            .with_deadline(Duration::ZERO)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.deadline_truncated && !report.complete && !report.paused);
        assert_eq!(report.states, 0);
        assert!(report.passed(), "no violation can be found without work");
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_is_rejected() {
        let _ = ModelChecker::new(10, 10_000).with_threads(0);
    }
}
