//! Exhaustive model checking of small protocol instances.
//!
//! [`ModelChecker`] performs a depth-first search over *all* schedules from
//! an initial configuration, de-duplicating configurations (two schedules
//! that lead to the same configuration explore a single subtree). On every
//! reachable configuration it checks the task's safety predicates —
//! k-agreement and validity — and, optionally, solo termination within a
//! step budget from every reachable configuration, which is precisely
//! obstruction-freedom restricted to the explored region (and for Algorithm 1
//! the paper's Lemma 8 gives the concrete budget `8(n-k)`).
//!
//! Racing-style algorithms have unbounded state spaces (lap counters grow
//! under contention), so exploration is bounded by depth and state count;
//! [`CheckReport::complete`] records whether any cutoff was hit. A report
//! with `complete == true` and no violation is an exhaustive proof of safety
//! for that instance; `complete == false` is a bounded certificate.

use std::collections::HashSet;
use std::fmt;

use crate::config::Configuration;
use crate::ids::ProcessId;
use crate::protocol::Protocol;
use crate::runner::{solo_run_cloned, SoloRunError};
use crate::task::TaskViolation;

/// Bounded-exhaustive schedule explorer.
#[derive(Clone, Copy, Debug)]
pub struct ModelChecker {
    /// Maximum schedule length explored from the initial configuration.
    pub max_depth: usize,
    /// Maximum number of distinct configurations visited.
    pub max_states: usize,
    /// If set, verify from every visited configuration that every running
    /// process decides within this many solo steps (obstruction-freedom).
    pub solo_budget: Option<usize>,
}

impl ModelChecker {
    /// A checker with the given depth and state bounds and no solo checking.
    pub fn new(max_depth: usize, max_states: usize) -> Self {
        ModelChecker {
            max_depth,
            max_states,
            solo_budget: None,
        }
    }

    /// Enable solo-termination (obstruction-freedom) checking with the given
    /// per-run step budget.
    pub fn with_solo_budget(mut self, budget: usize) -> Self {
        self.solo_budget = Some(budget);
        self
    }

    /// Explore all schedules from the initial configuration for `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if the initial configuration cannot be constructed (bad inputs
    /// are a usage error in test code).
    pub fn check<P: Protocol>(&self, protocol: &P, inputs: &[u64]) -> CheckReport {
        let initial =
            Configuration::initial(protocol, inputs).expect("model checker requires valid inputs");
        let task = protocol.task();
        let mut visited: HashSet<Configuration<P>> = HashSet::new();
        let mut report = CheckReport {
            states: 0,
            terminal_states: 0,
            complete: true,
            deepest: 0,
            violation: None,
        };
        // DFS stack: configuration + the schedule that produced it.
        let mut stack: Vec<(Configuration<P>, Vec<ProcessId>)> = vec![(initial, Vec::new())];
        while let Some((config, schedule)) = stack.pop() {
            if !visited.insert(config.clone()) {
                continue;
            }
            report.states += 1;
            report.deepest = report.deepest.max(schedule.len());
            if report.states >= self.max_states {
                report.complete = false;
            }
            // Safety predicates on every reachable configuration.
            if let Err(v) = task.check(inputs, &config.decisions()) {
                report.violation = Some(FoundViolation {
                    kind: ViolationKind::Task(v),
                    schedule,
                });
                return report;
            }
            // Obstruction-freedom: every running process decides solo.
            if let Some(budget) = self.solo_budget {
                for pid in config.running() {
                    match solo_run_cloned(protocol, &config, pid, budget) {
                        Ok(_) => {}
                        Err(SoloRunError::BudgetExhausted { .. }) => {
                            report.violation = Some(FoundViolation {
                                kind: ViolationKind::SoloTermination { pid, budget },
                                schedule,
                            });
                            return report;
                        }
                        Err(e) => {
                            report.violation = Some(FoundViolation {
                                kind: ViolationKind::Internal(e.to_string()),
                                schedule,
                            });
                            return report;
                        }
                    }
                }
            }
            let running = config.running();
            if running.is_empty() {
                report.terminal_states += 1;
                continue;
            }
            if schedule.len() >= self.max_depth || report.states >= self.max_states {
                report.complete = false;
                continue;
            }
            for pid in running {
                let mut child = config.clone();
                match child.step(protocol, pid) {
                    Ok(_) => {
                        let mut s = schedule.clone();
                        s.push(pid);
                        stack.push((child, s));
                    }
                    Err(e) => {
                        let mut s = schedule.clone();
                        s.push(pid);
                        report.violation = Some(FoundViolation {
                            kind: ViolationKind::Internal(e.to_string()),
                            schedule: s,
                        });
                        return report;
                    }
                }
            }
        }
        report
    }

    /// Check every input assignment of the protocol's task (all `m^n`
    /// vectors). Returns the first failing report, or the last successful
    /// one with aggregate counts.
    pub fn check_all_inputs<P: Protocol>(&self, protocol: &P) -> CheckReport {
        let task = protocol.task();
        let mut aggregate = CheckReport {
            states: 0,
            terminal_states: 0,
            complete: true,
            deepest: 0,
            violation: None,
        };
        let mut inputs = vec![0u64; task.n];
        loop {
            let report = self.check(protocol, &inputs);
            aggregate.states += report.states;
            aggregate.terminal_states += report.terminal_states;
            aggregate.complete &= report.complete;
            aggregate.deepest = aggregate.deepest.max(report.deepest);
            if report.violation.is_some() {
                aggregate.violation = report.violation;
                return aggregate;
            }
            // Advance the input vector like an odometer in base m.
            let mut i = 0;
            loop {
                if i == task.n {
                    return aggregate;
                }
                inputs[i] += 1;
                if inputs[i] < task.m {
                    break;
                }
                inputs[i] = 0;
                i += 1;
            }
        }
    }
}

/// Result of a model-checking run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Distinct configurations visited.
    pub states: usize,
    /// Configurations in which every process has decided.
    pub terminal_states: usize,
    /// `true` if no depth/state cutoff was hit: the search was exhaustive.
    pub complete: bool,
    /// Length of the longest schedule explored.
    pub deepest: usize,
    /// The first violation found, if any, with a witnessing schedule.
    pub violation: Option<FoundViolation>,
}

impl CheckReport {
    /// Whether the check passed (no violation found).
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }

    /// Whether the check passed *and* explored the full reachable space.
    pub fn proves_safety(&self) -> bool {
        self.passed() && self.complete
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states ({} terminal), deepest schedule {}, {}",
            self.states,
            self.terminal_states,
            self.deepest,
            match (&self.violation, self.complete) {
                (Some(v), _) => format!("VIOLATION: {v}"),
                (None, true) => "exhaustive, no violations".to_string(),
                (None, false) => "bounded (cutoff hit), no violations".to_string(),
            }
        )
    }
}

/// A violation discovered by the model checker, with the schedule that
/// reaches the violating configuration from the initial one.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The witnessing schedule (sequence of process ids from the initial
    /// configuration).
    pub schedule: Vec<ProcessId>,
}

impl fmt::Display for FoundViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} via schedule {:?}", self.kind, self.schedule)
    }
}

/// Kinds of model-checking violations.
#[derive(Clone, Debug)]
pub enum ViolationKind {
    /// A task safety predicate failed (agreement or validity).
    Task(TaskViolation),
    /// A process failed to decide within the solo budget
    /// (obstruction-freedom violation within the explored region).
    SoloTermination {
        /// The stuck process.
        pid: ProcessId,
        /// The exhausted budget.
        budget: usize,
    },
    /// The simulator rejected a step (protocol bug, e.g. schema violation).
    Internal(String),
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Task(v) => write!(f, "task violation: {v}"),
            ViolationKind::SoloTermination { pid, budget } => {
                write!(f, "{pid} did not decide within {budget} solo steps")
            }
            ViolationKind::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{SelfishConsensus, TwoProcessSwapConsensus};

    #[test]
    fn two_process_consensus_is_exhaustively_safe() {
        let report = ModelChecker::new(10, 10_000)
            .with_solo_budget(4)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.proves_safety(), "{report}");
        assert!(report.terminal_states > 0);
    }

    #[test]
    fn two_process_consensus_all_inputs() {
        // 16^2 input vectors, each fully explored.
        let report = ModelChecker::new(10, 10_000).check_all_inputs(&TwoProcessSwapConsensus);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn selfish_consensus_caught_with_witness() {
        let report = ModelChecker::new(10, 10_000).check(&SelfishConsensus { n: 2 }, &[0, 1]);
        assert!(report.to_string().contains("VIOLATION"));
        let violation = report
            .violation
            .expect("must catch the agreement violation");
        assert!(matches!(
            violation.kind,
            ViolationKind::Task(TaskViolation::Agreement { .. })
        ));
        assert!(!violation.schedule.is_empty());
    }

    #[test]
    fn selfish_consensus_with_equal_inputs_passes() {
        // With equal inputs the broken protocol cannot disagree.
        let report = ModelChecker::new(10, 10_000).check(&SelfishConsensus { n: 2 }, &[1, 1]);
        assert!(report.proves_safety(), "{report}");
    }

    #[test]
    fn cutoffs_mark_report_incomplete() {
        let report = ModelChecker::new(1, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.passed());
        assert!(!report.complete, "depth 1 cannot cover 2-step executions");
        assert!(!report.proves_safety());
    }

    #[test]
    fn state_dedup_keeps_counts_small() {
        // Both schedules of the 2-process protocol converge; visited-state
        // dedup should keep the total tiny.
        let report = ModelChecker::new(10, 10_000).check(&TwoProcessSwapConsensus, &[0, 1]);
        assert!(report.states <= 8, "states = {}", report.states);
    }

    #[test]
    fn solo_budget_violation_detected() {
        // With a budget of 0 steps, nobody can decide: every configuration
        // with a running process violates the solo check.
        let report = ModelChecker::new(10, 10_000)
            .with_solo_budget(0)
            .check(&TwoProcessSwapConsensus, &[0, 1]);
        let v = report.violation.expect("budget 0 must be violated");
        assert!(matches!(
            v.kind,
            ViolationKind::SoloTermination { budget: 0, .. }
        ));
    }
}
