//! Execution histories: the sequence of operations applied during an
//! execution, with responses and the processes that applied them (Section 2
//! of the paper defines the history of an execution exactly this way).

use std::collections::HashSet;
use std::fmt;

use swapcons_objects::{ObjectOp, Response};

use crate::ids::{ObjectId, ProcessId};

/// One step of an execution: the process, the operation it applied, the
/// object it targeted, the response it received, and the decision it made
/// (if this step decided).
#[derive(Clone, PartialEq, Eq)]
pub struct StepRecord<V> {
    /// The stepping process.
    pub pid: ProcessId,
    /// The object targeted.
    pub object: ObjectId,
    /// The operation applied.
    pub op: ObjectOp<V>,
    /// The response received.
    pub response: Response<V>,
    /// The value decided by this step, if any.
    pub decided: Option<u64>,
}

impl<V: fmt::Debug> fmt::Debug for StepRecord<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {:?} on {:?} -> {:?}",
            self.pid, self.op, self.object, self.response
        )?;
        if let Some(d) = self.decided {
            write!(f, " (decides {d})")?;
        }
        Ok(())
    }
}

/// The history of a finite execution: an ordered sequence of steps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct History<V> {
    steps: Vec<StepRecord<V>>,
}

impl<V> History<V> {
    /// An empty history.
    pub fn new() -> Self {
        History { steps: Vec::new() }
    }

    /// Append a step.
    pub fn push(&mut self, step: StepRecord<V>) {
        self.steps.push(step);
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterate over the steps in order.
    pub fn iter(&self) -> std::slice::Iter<'_, StepRecord<V>> {
        self.steps.iter()
    }

    /// The steps as a slice.
    pub fn steps(&self) -> &[StepRecord<V>] {
        &self.steps
    }

    /// Whether the history is `P`-only (contains steps only by processes in
    /// `pids`).
    pub fn is_only_by(&self, pids: &[ProcessId]) -> bool {
        let set: HashSet<ProcessId> = pids.iter().copied().collect();
        self.steps.iter().all(|s| set.contains(&s.pid))
    }

    /// The set of objects accessed.
    pub fn objects_accessed(&self) -> HashSet<ObjectId> {
        self.steps.iter().map(|s| s.object).collect()
    }

    /// The set of objects targeted by *nontrivial* operations (the objects
    /// an execution "swaps"/"writes" — what covering arguments count).
    pub fn objects_modified(&self) -> HashSet<ObjectId> {
        self.steps
            .iter()
            .filter(|s| s.op.is_nontrivial())
            .map(|s| s.object)
            .collect()
    }

    /// The set of processes that took steps.
    pub fn participants(&self) -> HashSet<ProcessId> {
        self.steps.iter().map(|s| s.pid).collect()
    }

    /// Steps per process, in order.
    pub fn steps_by(&self, pid: ProcessId) -> impl Iterator<Item = &StepRecord<V>> {
        self.steps.iter().filter(move |s| s.pid == pid)
    }

    /// Number of steps taken by `pid`.
    pub fn step_count_of(&self, pid: ProcessId) -> usize {
        self.steps_by(pid).count()
    }

    /// Decisions recorded in this history, in order.
    pub fn decisions(&self) -> Vec<(ProcessId, u64)> {
        self.steps
            .iter()
            .filter_map(|s| s.decided.map(|d| (s.pid, d)))
            .collect()
    }

    /// Concatenate another history onto this one.
    pub fn extend(&mut self, other: History<V>) {
        self.steps.extend(other.steps);
    }
}

impl<V> IntoIterator for History<V> {
    type Item = StepRecord<V>;
    type IntoIter = std::vec::IntoIter<StepRecord<V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.steps.into_iter()
    }
}

impl<V> FromIterator<StepRecord<V>> for History<V> {
    fn from_iter<I: IntoIterator<Item = StepRecord<V>>>(iter: I) -> Self {
        History {
            steps: iter.into_iter().collect(),
        }
    }
}

impl<V> Extend<StepRecord<V>> for History<V> {
    fn extend<I: IntoIterator<Item = StepRecord<V>>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pid: usize, obj: usize, op: ObjectOp<u64>, resp: Response<u64>) -> StepRecord<u64> {
        StepRecord {
            pid: ProcessId(pid),
            object: ObjectId(obj),
            op,
            response: resp,
            decided: None,
        }
    }

    #[test]
    fn accessors_over_a_small_history() {
        let mut h = History::new();
        assert!(h.is_empty());
        h.push(rec(0, 0, ObjectOp::swap(1), Response::Value(0)));
        h.push(rec(1, 1, ObjectOp::read(), Response::Value(0)));
        h.push(rec(0, 1, ObjectOp::write(2), Response::Ack));
        assert_eq!(h.len(), 3);
        assert_eq!(h.step_count_of(ProcessId(0)), 2);
        assert_eq!(h.participants().len(), 2);
        assert_eq!(h.objects_accessed().len(), 2);
        // Only the swap and the write modified objects; the read did not.
        assert_eq!(
            h.objects_modified(),
            [ObjectId(0), ObjectId(1)].into_iter().collect()
        );
    }

    #[test]
    fn only_by_checks_participants() {
        let mut h = History::new();
        h.push(rec(2, 0, ObjectOp::read(), Response::Value(0)));
        assert!(h.is_only_by(&[ProcessId(2)]));
        assert!(h.is_only_by(&[ProcessId(1), ProcessId(2)]));
        assert!(!h.is_only_by(&[ProcessId(1)]));
        assert!(History::<u64>::new().is_only_by(&[]));
    }

    #[test]
    fn decisions_extracted_in_order() {
        let mut h = History::new();
        let mut r = rec(0, 0, ObjectOp::swap(1), Response::Value(0));
        r.decided = Some(7);
        h.push(r);
        let mut r = rec(1, 0, ObjectOp::swap(2), Response::Value(1));
        r.decided = Some(9);
        h.push(r);
        assert_eq!(h.decisions(), vec![(ProcessId(0), 7), (ProcessId(1), 9)]);
    }

    #[test]
    fn concat_and_collect() {
        let a: History<u64> = vec![rec(0, 0, ObjectOp::read(), Response::Value(0))]
            .into_iter()
            .collect();
        let mut b = History::new();
        b.push(rec(1, 0, ObjectOp::read(), Response::Value(0)));
        let mut ab = a.clone();
        ab.extend(b);
        assert_eq!(ab.len(), 2);
        assert_eq!(ab.steps()[0].pid, ProcessId(0));
        assert_eq!(ab.steps()[1].pid, ProcessId(1));
    }

    #[test]
    fn debug_format_mentions_decision() {
        let mut r = rec(0, 0, ObjectOp::swap(1), Response::Value(0));
        r.decided = Some(3);
        let s = format!("{r:?}");
        assert!(s.contains("decides 3"), "{s}");
    }
}
