//! Newtype identifiers for processes and shared objects.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a process (`p_0, …, p_{n-1}` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }

    /// Iterator over the first `n` process ids.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n).map(ProcessId)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// One transition of the explored execution graph: a normal protocol step
/// by a process, or a crash failure of a process (Section 2's crash model —
/// the crashed process permanently stops without deciding).
///
/// Crash transitions exist only where an exploration strategy injects them
/// ([`crate::engine::CrashBounded`]); runs without crash injection consist
/// of `Step` actions only.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Process `pid` applies its poised operation.
    Step(ProcessId),
    /// Process `pid` crashes: it permanently stops without deciding.
    Crash(ProcessId),
}

impl Action {
    /// The process this action concerns (the stepper or the crasher).
    pub fn pid(self) -> ProcessId {
        match self {
            Action::Step(p) | Action::Crash(p) => p,
        }
    }

    /// Whether this is a crash transition.
    pub fn is_crash(self) -> bool {
        matches!(self, Action::Crash(_))
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Step(p) => write!(f, "{p}"),
            Action::Crash(p) => write!(f, "†{p}"),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a shared object (`B_1, …` in the paper; zero-indexed here).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub usize);

impl ObjectId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }

    /// Iterator over the first `n` object ids.
    pub fn all(n: usize) -> impl Iterator<Item = ObjectId> + Clone {
        (0..n).map(ObjectId)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl From<usize> for ObjectId {
    fn from(i: usize) -> Self {
        ObjectId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{:?}", ProcessId(3)), "p3");
        assert_eq!(format!("{}", ObjectId(0)), "B0");
    }

    #[test]
    fn all_iterates_in_order() {
        let ps: Vec<_> = ProcessId::all(3).collect();
        assert_eq!(ps, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
        let os: Vec<_> = ObjectId::all(2).collect();
        assert_eq!(os, vec![ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn conversions() {
        assert_eq!(ProcessId::from(5).index(), 5);
        assert_eq!(ObjectId::from(7).index(), 7);
    }

    #[test]
    fn actions_project_pids_and_format() {
        assert_eq!(Action::Step(ProcessId(2)).pid(), ProcessId(2));
        assert_eq!(Action::Crash(ProcessId(2)).pid(), ProcessId(2));
        assert!(Action::Crash(ProcessId(0)).is_crash());
        assert!(!Action::Step(ProcessId(0)).is_crash());
        assert_eq!(format!("{:?}", Action::Step(ProcessId(1))), "p1");
        assert_eq!(format!("{}", Action::Crash(ProcessId(1))), "†p1");
    }
}
