//! Deterministic asynchronous shared-memory simulator for historyless-object
//! protocols, following the model of Section 2 of *The Space Complexity of
//! Consensus from Swap* (PODC 2022).
//!
//! The simulator executes **protocols** — deterministic per-process state
//! machines over a fixed set of shared historyless objects — under explicit
//! schedules, exactly as the paper's model prescribes: a *configuration*
//! holds a state for every process and a value for every object; a *step* by
//! a process applies its poised operation to an object, receives the
//! response, and updates local state; an *execution* is an alternating
//! sequence of configurations and steps chosen by a *scheduler*.
//!
//! Everything downstream reuses this substrate:
//!
//! * the algorithms in `swapcons-core` and `swapcons-baselines` implement
//!   [`Protocol`];
//! * [`run`](runner::run) / [`solo_run`](runner::solo_run) execute them under
//!   [`Scheduler`]s (round-robin, seeded-random, solo, fixed);
//! * the strategy-driven search core in [`engine`] owns the exhaustive
//!   exploration loop (discovery-time dedup, schedule arenas, copy-on-write
//!   scratch children, exact budgets) behind pluggable expansion, frontier,
//!   and visitor strategies;
//! * [`ModelChecker`](explore::ModelChecker) — an engine client —
//!   exhaustively explores small instances, checking k-agreement and
//!   validity on every reachable configuration and solo-termination bounds
//!   (obstruction-freedom); [`AdversarySynthesis`]
//!   — another client — searches for worst-case schedules maximizing a
//!   caller-defined objective;
//! * the lower-bound adversaries in `swapcons-lower` drive configurations
//!   step by step, using the indistinguishability helpers on
//!   [`Configuration`].
//!
//! # Example: two processes race on a single swap object
//!
//! ```
//! use swapcons_sim::{Configuration, ProcessId, runner, scheduler::RoundRobin};
//! use swapcons_sim::testing::TwoProcessSwapConsensus;
//!
//! let protocol = TwoProcessSwapConsensus;
//! let mut config = Configuration::initial(&protocol, &[7, 9]).unwrap();
//! let outcome = runner::run(&protocol, &mut config, &mut RoundRobin::new(), 100).unwrap();
//! assert!(outcome.all_decided);
//! // Both processes decide the same value, one of the two inputs.
//! let d0 = config.decision(ProcessId(0)).unwrap();
//! let d1 = config.decision(ProcessId(1)).unwrap();
//! assert_eq!(d0, d1);
//! assert!(d0 == 7 || d0 == 9);
//! ```

// Unsafe-code audit (PR 6): the simulator is pure safe Rust.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod canon;
mod config;
pub mod derived;
pub mod engine;
pub mod explore;
mod history;
mod ids;
mod protocol;
pub mod runner;
pub mod scheduler;
pub mod search;
pub mod shard;
pub mod snapshot;
pub mod task;
pub mod testing;

pub use canon::{Canonicalizer, ObjectClasses, Renaming, Symmetry};
pub use config::{Configuration, ProcStatus, SimError, StepUndo};
pub use derived::{LayeredProtocol, LayeredState};
pub use engine::{AdversarySynthesis, SynthesisReport};
pub use history::{History, StepRecord};
pub use ids::{Action, ObjectId, ProcessId};
pub use protocol::{Protocol, SimValue, Transition};
pub use scheduler::{Scheduler, StateScheduler};
pub use task::KSetTask;
