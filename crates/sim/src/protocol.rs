//! The [`Protocol`] trait: deterministic per-process state machines over
//! shared historyless objects.
//!
//! A protocol corresponds to the paper's notion of a (deterministic)
//! algorithm: for every configuration and process, it specifies the next
//! operation the process is *poised* to apply (Section 2), and how the
//! process's state evolves after receiving the response. Determinism is what
//! the lower-bound adversaries exploit — an obstruction-free algorithm is a
//! nondeterministic solo-terminating algorithm that happens to be
//! deterministic, and all constructions in the paper's proofs replay
//! deterministic solo executions.

use std::fmt::Debug;
use std::hash::Hash;

use swapcons_objects::{ObjectOp, ObjectSchema, Response};

use crate::canon::{Renaming, Symmetry};
use crate::ids::{ObjectId, ProcessId};
use crate::task::KSetTask;

/// Values storable in simulated objects.
///
/// The simulator is generic over the object value type so that Algorithm 1's
/// composite values (lap-counter array + process identifier) can be stored
/// directly. Bounded-domain enforcement (Section 5's objects) applies to
/// values that expose an integer *domain point*; composite values return
/// `None` and may only inhabit unbounded-domain objects.
///
/// Values are `Send + Sync` so configurations can migrate between the
/// sharded engine's workers (see [`crate::shard`]); values are plain data,
/// so the bound is vacuous in practice.
pub trait SimValue: Clone + Eq + Hash + Debug + Send + Sync {
    /// The integer the value denotes, when the value type embeds into a
    /// bounded integer domain. Used by [`crate::Configuration`] to enforce
    /// [`swapcons_objects::Domain::Bounded`] schemas.
    fn domain_point(&self) -> Option<u64> {
        None
    }
}

impl SimValue for u64 {
    fn domain_point(&self) -> Option<u64> {
        Some(*self)
    }
}

impl SimValue for bool {
    fn domain_point(&self) -> Option<u64> {
        Some(u64::from(*self))
    }
}

// Composite values (no integer domain point). `Option<V>` is the idiomatic
// representation of a "⊥ or payload" object value, as in the paper's
// 2-process consensus from one swap object.
impl<V: SimValue> SimValue for Option<V> {}

impl<A: SimValue, B: SimValue> SimValue for (A, B) {}

/// Result of a process absorbing the response to its poised operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Transition<S> {
    /// The process continues with a new state.
    Continue(S),
    /// The process decides the given value and terminates (takes no further
    /// steps — the paper's processes output once and stop participating).
    Decide(u64),
}

/// A deterministic algorithm in the asynchronous shared-memory model.
///
/// Implementations must be **deterministic**: `poised` and `observe` must be
/// pure functions of their arguments. All simulator facilities (replay,
/// model checking, the lower-bound adversaries) rely on this.
///
/// The object set is fixed up front ([`Protocol::schemas`]); the simulator
/// enforces that every operation conforms to the schema of the object it
/// targets, so an algorithm's claimed object kinds (the Table 1 row it
/// belongs to) are machine-checked on every step.
///
/// Protocols are `Sync` (and their states `Send + Sync`): a protocol is an
/// immutable *description* of an algorithm, and the sharded engine
/// ([`crate::shard`]) shares one `&P` across its workers. Every protocol in
/// the workspace is plain data, so the bounds cost nothing.
pub trait Protocol: Sync {
    /// Per-process local state.
    type State: Clone + Eq + Hash + Debug + Send + Sync;
    /// Object value type.
    type Value: SimValue;

    /// Human-readable name (used in reports and benchmark output).
    fn name(&self) -> String;

    /// The task this protocol solves, with its parameters.
    fn task(&self) -> KSetTask;

    /// Number of processes (`n`).
    fn num_processes(&self) -> usize {
        self.task().n
    }

    /// Number of shared objects. This count is the protocol's **space
    /// complexity** — the quantity all of the paper's bounds are about
    /// (priced per-kind via [`Protocol::schema`]; for protocols over
    /// *derived* objects, what counts is the flattened base-object set the
    /// engine actually simulates, never the derived facade).
    fn num_objects(&self) -> usize;

    /// Capability schema of object `obj` (`0..num_objects()`).
    ///
    /// [`crate::Configuration::step`] consults this once per simulated step
    /// — it is the hottest schema path in the workspace, which is why the
    /// per-object accessor is the required method and the vector form
    /// ([`Protocol::schemas`]) is derived from it, not the other way
    /// around.
    fn schema(&self, obj: ObjectId) -> ObjectSchema;

    /// Capability schemas of all shared objects, materialized. Derived from
    /// [`Protocol::schema`]; prefer the per-object accessor on hot paths.
    fn schemas(&self) -> Vec<ObjectSchema> {
        ObjectId::all(self.num_objects())
            .map(|obj| self.schema(obj))
            .collect()
    }

    /// Initial value of object `obj` (the paper's initial configuration
    /// defines object values before any steps).
    fn initial_value(&self, obj: ObjectId) -> Self::Value;

    /// Initial state of process `pid` with input `input`.
    fn initial_state(&self, pid: ProcessId, input: u64) -> Self::State;

    /// A decision made by `pid` without taking any steps, if the protocol
    /// assigns one. The paper's k-set agreement constructions use this
    /// ("the remaining `2k-n` processes simply decide their input values");
    /// most protocols return `None` for every process.
    fn initial_decision(&self, _pid: ProcessId, _input: u64) -> Option<u64> {
        None
    }

    /// The operation the process is poised to apply in a state. Must be
    /// deterministic.
    ///
    /// Protocols over historyless objects build the operation with
    /// [`swapcons_objects::HistorylessOp`] and convert with `.into()`; the
    /// full [`ObjectOp`] hierarchy additionally admits the
    /// read-modify-write kinds (test-and-set, max-register read/write) that
    /// flattened derived-object protocols step through.
    fn poised(&self, state: &Self::State) -> (ObjectId, ObjectOp<Self::Value>);

    /// Absorb the response to the poised operation, producing the next state
    /// or a decision. Must be deterministic.
    fn observe(
        &self,
        state: Self::State,
        response: Response<Self::Value>,
    ) -> Transition<Self::State>;

    /// The protocol's declared symmetry group, used by the exploration
    /// engines to search the quotient state space (see [`crate::canon`]).
    ///
    /// The default declares **no symmetry**, which is always sound. A
    /// protocol overriding this must uphold the *equivariance contract* for
    /// every renaming `g = (π, σ)` its declaration admits:
    ///
    /// * initial configurations are fixed: renaming the initial state of
    ///   process `i` with input `v` yields the initial state of `π(i)` with
    ///   input `σ(v)`, and likewise for initial object values;
    /// * steps commute: `g · step(C, p) = step(g·C, π(p))` for every
    ///   configuration `C` and running process `p` (with object slots
    ///   permuted by [`Protocol::rename_object`]).
    ///
    /// [`crate::canon::assert_equivariant`] brute-force checks the contract;
    /// every protocol test suite in the workspace calls it.
    fn symmetry(&self) -> Symmetry {
        Symmetry::none()
    }

    /// Rewrite a local state under a renaming: map every embedded process id
    /// through [`Renaming::pid`] and every embedded *task input value*
    /// through [`Renaming::value`] (nothing else — counters, positions, and
    /// flags are structural, not nominal).
    ///
    /// The default clones unchanged, which is correct exactly when states
    /// embed neither process ids nor (for value-symmetric declarations)
    /// input values.
    fn rename_state(&self, state: &Self::State, renaming: &Renaming) -> Self::State {
        let _ = renaming;
        state.clone()
    }

    /// Rewrite an object value under a renaming — same rules as
    /// [`Protocol::rename_state`]. `obj` identifies the *source* object, so
    /// protocols can treat slots with different roles differently (e.g. a
    /// proposal register rewrites input values, a flag does not). The
    /// renamed value must still satisfy the destination object's schema
    /// (debug-asserted by the canonicalizer).
    fn rename_value(&self, obj: ObjectId, value: &Self::Value, renaming: &Renaming) -> Self::Value {
        let _ = (obj, renaming);
        value.clone()
    }

    /// The object permutation applied by a renaming. Must be a permutation
    /// mapping each object to one with an identical schema
    /// ([`crate::canon::assert_equivariant`] checks both).
    ///
    /// The default returns the renaming's **declared** object component
    /// ([`Renaming::object`]) — the permutation
    /// [`crate::Canonicalizer::for_inputs`] composed from the protocol's
    /// [`crate::canon::ObjectClasses`] declarations (identity for protocols
    /// without any). Override it only when the object permutation is a
    /// *function of `π`* rather than a declarable class structure —
    /// single-writer registers moving with their writer pid, as in
    /// `TasConsensus`.
    fn rename_object(&self, obj: ObjectId, renaming: &Renaming) -> ObjectId {
        renaming.object(obj)
    }
}

/// Blanket impl so `&P` can be passed wherever a protocol is expected.
impl<P: Protocol + ?Sized> Protocol for &P {
    type State = P::State;
    type Value = P::Value;

    fn name(&self) -> String {
        (**self).name()
    }
    fn task(&self) -> KSetTask {
        (**self).task()
    }
    fn num_objects(&self) -> usize {
        (**self).num_objects()
    }
    fn schema(&self, obj: ObjectId) -> ObjectSchema {
        (**self).schema(obj)
    }
    fn schemas(&self) -> Vec<ObjectSchema> {
        (**self).schemas()
    }
    fn initial_value(&self, obj: ObjectId) -> Self::Value {
        (**self).initial_value(obj)
    }
    fn initial_state(&self, pid: ProcessId, input: u64) -> Self::State {
        (**self).initial_state(pid, input)
    }
    fn initial_decision(&self, pid: ProcessId, input: u64) -> Option<u64> {
        (**self).initial_decision(pid, input)
    }
    fn poised(&self, state: &Self::State) -> (ObjectId, ObjectOp<Self::Value>) {
        (**self).poised(state)
    }
    fn observe(
        &self,
        state: Self::State,
        response: Response<Self::Value>,
    ) -> Transition<Self::State> {
        (**self).observe(state, response)
    }
    fn symmetry(&self) -> Symmetry {
        (**self).symmetry()
    }
    fn rename_state(&self, state: &Self::State, renaming: &Renaming) -> Self::State {
        (**self).rename_state(state, renaming)
    }
    fn rename_value(&self, obj: ObjectId, value: &Self::Value, renaming: &Renaming) -> Self::Value {
        (**self).rename_value(obj, value, renaming)
    }
    fn rename_object(&self, obj: ObjectId, renaming: &Renaming) -> ObjectId {
        (**self).rename_object(obj, renaming)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_domain_point_is_identity() {
        assert_eq!(5u64.domain_point(), Some(5));
    }

    #[test]
    fn bool_domain_point() {
        assert_eq!(false.domain_point(), Some(0));
        assert_eq!(true.domain_point(), Some(1));
    }
}
