//! Execution drivers: run a protocol under a scheduler, run solo
//! (solo-terminating) executions, and replay recorded schedules.

use std::fmt;

use crate::config::{Configuration, SimError};
use crate::history::History;
use crate::ids::{Action, ProcessId};
use crate::protocol::Protocol;
use crate::scheduler::StateScheduler;

/// Result of [`run`].
#[derive(Clone, Debug)]
pub struct RunOutcome<V> {
    /// Whether every process decided before the step budget ran out (or the
    /// scheduler stopped).
    pub all_decided: bool,
    /// Total steps taken.
    pub steps: usize,
    /// The execution's history.
    pub history: History<V>,
}

/// Drive `config` under `scheduler` for at most `max_steps` steps, or until
/// all processes decide or the scheduler stops.
///
/// # Errors
///
/// Propagates [`SimError`] from [`Configuration::step`] — in a correct
/// protocol this only happens on schema violations, i.e. protocol bugs.
pub fn run<P: Protocol, S: StateScheduler<P>>(
    protocol: &P,
    config: &mut Configuration<P>,
    scheduler: &mut S,
    max_steps: usize,
) -> Result<RunOutcome<P::Value>, SimError> {
    let mut history = History::new();
    let mut steps = 0;
    // Scratch buffer: the running set is recomputed every step but the
    // allocation is paid once.
    let mut running: Vec<ProcessId> = Vec::new();
    while steps < max_steps {
        config.running_into(&mut running);
        if running.is_empty() {
            break;
        }
        let Some(pid) = scheduler.pick_in(protocol, config, &running, steps) else {
            break;
        };
        let record = config.step(protocol, pid)?;
        history.push(record);
        steps += 1;
    }
    Ok(RunOutcome {
        all_decided: config.all_decided(),
        steps,
        history,
    })
}

/// Outcome of a solo run that reached a decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoloOutcome {
    /// The decided value.
    pub decision: u64,
    /// Steps the process took to decide.
    pub steps: usize,
}

/// Error from [`solo_run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SoloRunError {
    /// The process had already decided before the run started — its solo
    /// execution is empty; the existing decision is reported.
    AlreadyDecided(u64),
    /// The process did not decide within the step budget. For an
    /// obstruction-free algorithm this indicates either too small a budget
    /// or a violation of obstruction-freedom.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: usize,
    },
    /// The simulator rejected a step.
    Sim(SimError),
}

impl fmt::Display for SoloRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoloRunError::AlreadyDecided(v) => write!(f, "process had already decided {v}"),
            SoloRunError::BudgetExhausted { budget } => {
                write!(f, "no decision within {budget} solo steps")
            }
            SoloRunError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for SoloRunError {}

impl From<SimError> for SoloRunError {
    fn from(e: SimError) -> Self {
        SoloRunError::Sim(e)
    }
}

/// Run `pid` alone from `config` until it decides — the paper's
/// *solo-terminating execution by `pid`*. Mutates `config` in place.
///
/// # Errors
///
/// See [`SoloRunError`].
pub fn solo_run<P: Protocol>(
    protocol: &P,
    config: &mut Configuration<P>,
    pid: ProcessId,
    max_steps: usize,
) -> Result<SoloOutcome, SoloRunError> {
    if let Some(v) = config.decision(pid) {
        return Err(SoloRunError::AlreadyDecided(v));
    }
    // Solo semantics without the scheduler machinery: only `pid` ever
    // steps, so there is no running set to materialize, and the record-free
    // `step_quiet` path makes the loop allocation- and clone-free (this is
    // the model checker's innermost loop).
    let mut steps = 0;
    while steps < max_steps {
        let decided = config.step_quiet(protocol, pid)?;
        steps += 1;
        if let Some(v) = decided {
            return Ok(SoloOutcome { decision: v, steps });
        }
    }
    Err(SoloRunError::BudgetExhausted { budget: max_steps })
}

/// Clone `config` and run `pid` solo on the clone, leaving `config` alone.
/// Returns the outcome and the final configuration.
///
/// # Errors
///
/// See [`SoloRunError`].
pub fn solo_run_cloned<P: Protocol>(
    protocol: &P,
    config: &Configuration<P>,
    pid: ProcessId,
    max_steps: usize,
) -> Result<(SoloOutcome, Configuration<P>), SoloRunError> {
    let mut clone = config.clone();
    let outcome = solo_run(protocol, &mut clone, pid, max_steps)?;
    Ok((outcome, clone))
}

/// Replay an explicit schedule (sequence of process ids); picks of decided
/// processes are skipped. Returns the history.
///
/// # Errors
///
/// Propagates [`SimError`] from stepping.
pub fn replay<P: Protocol>(
    protocol: &P,
    config: &mut Configuration<P>,
    schedule: &[ProcessId],
) -> Result<History<P::Value>, SimError> {
    let mut history = History::new();
    for &pid in schedule {
        if config.decision(pid).is_some() {
            continue;
        }
        history.push(config.step(protocol, pid)?);
    }
    Ok(history)
}

/// Replay an explicit action sequence — steps *and* crash transitions — as
/// produced by crash-injected searches ([`crate::search::ScheduleArena::
/// actions`]). Step picks of decided processes are skipped (matching
/// [`replay`]); crash and step actions on crashed processes are **not**
/// skipped, so a schedule that was only valid because of a crash fails
/// loudly instead of replaying something else. Returns the history of the
/// performed steps (crashes leave no history record: no object is touched).
///
/// # Errors
///
/// Propagates [`SimError`] from stepping or crashing.
pub fn replay_actions<P: Protocol>(
    protocol: &P,
    config: &mut Configuration<P>,
    actions: &[Action],
) -> Result<History<P::Value>, SimError> {
    let mut history = History::new();
    for &action in actions {
        match action {
            Action::Step(pid) => {
                if config.decision(pid).is_some() {
                    continue;
                }
                history.push(config.step(protocol, pid)?);
            }
            Action::Crash(pid) => {
                config.crash(pid)?;
            }
        }
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{RoundRobin, SeededRandom};
    use crate::testing::TwoProcessSwapConsensus;

    fn init(inputs: &[u64]) -> Configuration<TwoProcessSwapConsensus> {
        Configuration::initial(&TwoProcessSwapConsensus, inputs).unwrap()
    }

    #[test]
    fn round_robin_run_decides_everyone() {
        let mut c = init(&[0, 1]);
        let out = run(&TwoProcessSwapConsensus, &mut c, &mut RoundRobin::new(), 10).unwrap();
        assert!(out.all_decided);
        assert_eq!(out.steps, 2, "each process swaps once");
        assert_eq!(c.decided_values().len(), 1, "agreement");
    }

    #[test]
    fn random_runs_agree_for_any_seed() {
        for seed in 0..50 {
            let mut c = init(&[0, 1]);
            let out = run(
                &TwoProcessSwapConsensus,
                &mut c,
                &mut SeededRandom::new(seed),
                10,
            )
            .unwrap();
            assert!(out.all_decided);
            assert_eq!(c.decided_values().len(), 1, "agreement under seed {seed}");
        }
    }

    #[test]
    fn solo_run_decides_own_input() {
        let mut c = init(&[1, 0]);
        let out = solo_run(&TwoProcessSwapConsensus, &mut c, ProcessId(1), 10).unwrap();
        assert_eq!(out.decision, 0, "validity: p1 decides its own input solo");
        assert_eq!(out.steps, 1);
        assert_eq!(c.decision(ProcessId(0)), None, "p0 untouched");
    }

    #[test]
    fn solo_run_cloned_preserves_original() {
        let c = init(&[1, 0]);
        let (out, after) = solo_run_cloned(&TwoProcessSwapConsensus, &c, ProcessId(0), 10).unwrap();
        assert_eq!(out.decision, 1);
        assert_eq!(c.decision(ProcessId(0)), None);
        assert_eq!(after.decision(ProcessId(0)), Some(1));
    }

    #[test]
    fn solo_run_on_decided_process_errors() {
        let mut c = init(&[1, 0]);
        solo_run(&TwoProcessSwapConsensus, &mut c, ProcessId(0), 10).unwrap();
        let err = solo_run(&TwoProcessSwapConsensus, &mut c, ProcessId(0), 10).unwrap_err();
        assert_eq!(err, SoloRunError::AlreadyDecided(1));
    }

    #[test]
    fn replay_skips_decided() {
        let mut c = init(&[0, 1]);
        let h = replay(
            &TwoProcessSwapConsensus,
            &mut c,
            &[ProcessId(0), ProcessId(0), ProcessId(1)],
        )
        .unwrap();
        assert_eq!(h.len(), 2, "second p0 pick skipped (already decided)");
        assert!(c.all_decided());
    }

    #[test]
    fn replay_actions_applies_crashes() {
        let mut c = init(&[0, 1]);
        let h = replay_actions(
            &TwoProcessSwapConsensus,
            &mut c,
            &[Action::Crash(ProcessId(0)), Action::Step(ProcessId(1))],
        )
        .unwrap();
        assert_eq!(h.len(), 1, "the crash leaves no history record");
        assert!(c.is_crashed(ProcessId(0)));
        assert_eq!(c.decision(ProcessId(1)), Some(1), "survivor decides alone");
        // Stepping or re-crashing a crashed process is a loud failure.
        let err = replay_actions(
            &TwoProcessSwapConsensus,
            &mut c,
            &[Action::Step(ProcessId(0))],
        )
        .unwrap_err();
        assert_eq!(err, SimError::ProcessCrashed(ProcessId(0)));
    }

    #[test]
    fn history_records_operations() {
        let mut c = init(&[0, 1]);
        let out = run(&TwoProcessSwapConsensus, &mut c, &mut RoundRobin::new(), 10).unwrap();
        assert_eq!(out.history.len(), 2);
        assert!(
            out.history.iter().all(|s| s.op.is_nontrivial()),
            "swap-only protocol"
        );
        assert_eq!(out.history.decisions().len(), 2);
    }
}
