//! Schedulers — the paper's adversarial "scheduler picks a process that has
//! not decided to take its next step" (Section 2), as pluggable strategies.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::Configuration;
use crate::ids::{ObjectId, ProcessId};
use crate::protocol::Protocol;

/// A strategy for choosing which running process takes the next step.
///
/// `running` is the set of processes that have not yet decided (never
/// empty when called). Returning `None` ends the execution early — used by
/// schedulers that model a fixed schedule running out.
pub trait Scheduler {
    /// Choose the next process to step, or `None` to stop the execution.
    fn pick(&mut self, running: &[ProcessId], step_index: usize) -> Option<ProcessId>;
}

/// A scheduler that may inspect the current configuration — the interface
/// the paper's *adaptive* adversaries live behind (the Lemma 9 playbook
/// chooses the next process by looking at what everyone is poised to do).
///
/// Every plain [`Scheduler`] is a `StateScheduler` that ignores the state
/// (blanket impl), so [`crate::runner::run`] accepts both interchangeably.
pub trait StateScheduler<P: Protocol> {
    /// Choose the next process to step given full visibility of the
    /// configuration, or `None` to stop the execution.
    fn pick_in(
        &mut self,
        protocol: &P,
        config: &Configuration<P>,
        running: &[ProcessId],
        step_index: usize,
    ) -> Option<ProcessId>;
}

impl<P: Protocol, S: Scheduler> StateScheduler<P> for S {
    fn pick_in(
        &mut self,
        _protocol: &P,
        _config: &Configuration<P>,
        running: &[ProcessId],
        step_index: usize,
    ) -> Option<ProcessId> {
        self.pick(running, step_index)
    }
}

/// The lap-lead-chasing adversary (Lemma 9 playbook): always schedule the
/// process poised on the most recently overwritten object it did not
/// overwrite itself.
///
/// Against racing algorithms this is the nastiest deterministic schedule
/// short of an exhaustive search: every scheduled process is fed the
/// freshest *foreign* value, so it observes a conflict (or a lap-counter
/// merge) on every pass, laps keep growing, and nobody's lead ever reaches
/// the decision margin — the livelock that obstruction-freedom explicitly
/// tolerates, driven adaptively instead of by lockstep luck. Safety
/// properties must hold under it; termination properties must not be
/// claimed under it.
///
/// Deterministic: ties break toward the lowest process id, so failures
/// replay.
#[derive(Debug, Default)]
pub struct LapLeadChasing {
    /// Last process to apply a nontrivial operation to each object, with a
    /// logical timestamp.
    last_overwrite: HashMap<ObjectId, (ProcessId, usize)>,
    /// Monotone operation counter (the timestamp source).
    clock: usize,
}

impl LapLeadChasing {
    /// A fresh chaser with no observed overwrites.
    pub fn new() -> Self {
        LapLeadChasing::default()
    }
}

impl<P: Protocol> StateScheduler<P> for LapLeadChasing {
    fn pick_in(
        &mut self,
        protocol: &P,
        config: &Configuration<P>,
        running: &[ProcessId],
        _step_index: usize,
    ) -> Option<ProcessId> {
        let mut best: Option<(usize, ProcessId)> = None;
        for &p in running {
            let Some((obj, _)) = config.poised(protocol, p) else {
                continue;
            };
            // Chase: prefer the process whose next operation lands on the
            // object carrying the freshest foreign overwrite.
            let score = match self.last_overwrite.get(&obj) {
                Some(&(writer, at)) if writer != p => at + 1,
                _ => 0,
            };
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, p));
            }
        }
        let chosen = best.map(|(_, p)| p)?;
        if let Some((obj, op)) = config.poised(protocol, chosen) {
            if op.is_nontrivial() {
                self.clock += 1;
                self.last_overwrite.insert(obj, (chosen, self.clock));
            }
        }
        Some(chosen)
    }
}

/// Drive `scheduler` from `config` for at most `max_steps` steps on a
/// clone, recording the schedule it produces and the configuration it
/// reaches. The bridge between hand-coded adversaries and the engine's
/// synthesized ones ([`crate::engine::AdversarySynthesis`]): a recorded
/// schedule can be scored with the same objective a synthesis run
/// maximizes, putting "the chaser's schedule" and "the searched extremal
/// schedule" on one axis.
pub fn record_schedule<P: Protocol, S: StateScheduler<P>>(
    protocol: &P,
    config: &Configuration<P>,
    scheduler: &mut S,
    max_steps: usize,
) -> (Vec<ProcessId>, Configuration<P>) {
    let mut world = config.clone();
    let mut schedule = Vec::with_capacity(max_steps);
    let mut running: Vec<ProcessId> = Vec::new();
    for step in 0..max_steps {
        world.running_into(&mut running);
        if running.is_empty() {
            break;
        }
        let Some(pid) = scheduler.pick_in(protocol, &world, &running, step) else {
            break;
        };
        if world.step_quiet(protocol, pid).is_err() {
            break;
        }
        schedule.push(pid);
    }
    (schedule, world)
}

/// Cycles through the running processes in id order.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// A round-robin scheduler starting at the lowest id.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, running: &[ProcessId], _step_index: usize) -> Option<ProcessId> {
        if running.is_empty() {
            return None;
        }
        let choice = running[self.cursor % running.len()];
        self.cursor = self.cursor.wrapping_add(1);
        Some(choice)
    }
}

/// Runs a single process solo — the schedules behind solo-terminating
/// executions and obstruction-freedom.
#[derive(Clone, Copy, Debug)]
pub struct Solo(pub ProcessId);

impl Scheduler for Solo {
    fn pick(&mut self, running: &[ProcessId], _step_index: usize) -> Option<ProcessId> {
        running.contains(&self.0).then_some(self.0)
    }
}

/// Uniformly random choice among running processes, from a seeded RNG
/// (deterministic given the seed, so failures replay).
pub struct SeededRandom {
    rng: StdRng,
}

impl SeededRandom {
    /// A random scheduler with the given seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededRandom {
    fn pick(&mut self, running: &[ProcessId], _step_index: usize) -> Option<ProcessId> {
        if running.is_empty() {
            return None;
        }
        Some(running[self.rng.gen_range(0..running.len())])
    }
}

impl fmt::Debug for SeededRandom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeededRandom").finish_non_exhaustive()
    }
}

/// Replays a fixed schedule; stops when the schedule is exhausted. Picks of
/// already-decided processes are skipped (schedulers may only pick running
/// processes in the model).
#[derive(Clone, Debug)]
pub struct Fixed {
    schedule: Vec<ProcessId>,
    cursor: usize,
}

impl Fixed {
    /// A scheduler that replays `schedule` in order.
    pub fn new(schedule: Vec<ProcessId>) -> Self {
        Fixed {
            schedule,
            cursor: 0,
        }
    }

    /// How many schedule entries have been consumed.
    pub fn consumed(&self) -> usize {
        self.cursor
    }
}

impl Scheduler for Fixed {
    fn pick(&mut self, running: &[ProcessId], _step_index: usize) -> Option<ProcessId> {
        while self.cursor < self.schedule.len() {
            let p = self.schedule[self.cursor];
            self.cursor += 1;
            if running.contains(&p) {
                return Some(p);
            }
        }
        None
    }
}

/// An "obstruction" scheduler: adversarial interleaving for a while, then a
/// solo suffix by one process. This is the schedule family obstruction-free
/// algorithms must terminate under: eventually some process runs alone.
pub struct ObstructionThenSolo {
    /// Steps of seeded-random interleaving before isolation.
    pub contention_steps: usize,
    /// The process granted the solo suffix.
    pub survivor: ProcessId,
    rng: StdRng,
}

impl ObstructionThenSolo {
    /// Random contention for `contention_steps`, then `survivor` runs alone.
    pub fn new(contention_steps: usize, survivor: ProcessId, seed: u64) -> Self {
        ObstructionThenSolo {
            contention_steps,
            survivor,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for ObstructionThenSolo {
    fn pick(&mut self, running: &[ProcessId], step_index: usize) -> Option<ProcessId> {
        if running.is_empty() {
            return None;
        }
        if step_index < self.contention_steps {
            Some(running[self.rng.gen_range(0..running.len())])
        } else {
            running.contains(&self.survivor).then_some(self.survivor)
        }
    }
}

impl fmt::Debug for ObstructionThenSolo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObstructionThenSolo")
            .field("contention_steps", &self.contention_steps)
            .field("survivor", &self.survivor)
            .finish_non_exhaustive()
    }
}

/// A crash-failure scheduler: random interleaving, but each listed process
/// permanently stops being scheduled after its crash step index. Crashed
/// processes never take another step — the asynchronous model's crash is
/// indistinguishable from being infinitely slow, which is exactly how the
/// remaining processes experience it.
pub struct CrashingRandom {
    crashes: Vec<(ProcessId, usize)>,
    rng: StdRng,
}

impl CrashingRandom {
    /// Random scheduling with the given `(process, crash_after_step)`
    /// schedule of failures.
    pub fn new(crashes: Vec<(ProcessId, usize)>, seed: u64) -> Self {
        CrashingRandom {
            crashes,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn crashed(&self, pid: ProcessId, step: usize) -> bool {
        self.crashes.iter().any(|&(p, at)| p == pid && step >= at)
    }
}

impl Scheduler for CrashingRandom {
    fn pick(&mut self, running: &[ProcessId], step_index: usize) -> Option<ProcessId> {
        let alive: Vec<ProcessId> = running
            .iter()
            .copied()
            .filter(|&p| !self.crashed(p, step_index))
            .collect();
        if alive.is_empty() {
            return None;
        }
        Some(alive[self.rng.gen_range(0..alive.len())])
    }
}

impl fmt::Debug for CrashingRandom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CrashingRandom")
            .field("crashes", &self.crashes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[usize]) -> Vec<ProcessId> {
        ids.iter().map(|&i| ProcessId(i)).collect()
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::new();
        let running = pids(&[0, 1, 2]);
        let picks: Vec<_> = (0..6)
            .map(|i| s.pick(&running, i).unwrap().index())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_handles_shrinking_set() {
        let mut s = RoundRobin::new();
        assert!(s.pick(&pids(&[0, 1]), 0).is_some());
        // One process decides; the scheduler keeps picking valid processes.
        let p = s.pick(&pids(&[1]), 1).unwrap();
        assert_eq!(p, ProcessId(1));
        assert_eq!(s.pick(&[], 2), None);
    }

    #[test]
    fn solo_picks_only_its_process() {
        let mut s = Solo(ProcessId(1));
        assert_eq!(s.pick(&pids(&[0, 1, 2]), 0), Some(ProcessId(1)));
        assert_eq!(s.pick(&pids(&[0, 2]), 1), None, "survivor decided: stop");
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let running = pids(&[0, 1, 2, 3]);
        let picks = |seed| {
            let mut s = SeededRandom::new(seed);
            (0..20)
                .map(|i| s.pick(&running, i).unwrap().index())
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(42), picks(42));
        assert_ne!(
            picks(42),
            picks(43),
            "different seeds should differ (w.h.p.)"
        );
    }

    #[test]
    fn fixed_replays_and_skips_decided() {
        let mut s = Fixed::new(pids(&[0, 1, 0, 1]));
        assert_eq!(s.pick(&pids(&[0, 1]), 0), Some(ProcessId(0)));
        // p1 decided: its entries are skipped.
        assert_eq!(s.pick(&pids(&[0]), 1), Some(ProcessId(0)));
        assert_eq!(s.pick(&pids(&[0]), 2), None);
        assert_eq!(s.consumed(), 4);
    }

    #[test]
    fn crashing_random_never_schedules_the_dead() {
        let mut s = CrashingRandom::new(vec![(ProcessId(0), 5)], 3);
        let running = pids(&[0, 1]);
        for step in 0..20 {
            let p = s.pick(&running, step).unwrap();
            if step >= 5 {
                assert_eq!(p, ProcessId(1), "p0 crashed at step 5");
            }
        }
        // Everyone crashed: scheduling stops.
        let mut s = CrashingRandom::new(vec![(ProcessId(0), 0), (ProcessId(1), 0)], 3);
        assert_eq!(s.pick(&running, 0), None);
    }

    #[test]
    fn lap_lead_chaser_alternates_on_a_single_object() {
        use crate::testing::TwoProcessSwapConsensus;
        use crate::Configuration;
        // One swap object: after p0's first swap, the chaser must hand the
        // freshest foreign value to p1, then back — strict alternation.
        let protocol = TwoProcessSwapConsensus;
        let config = Configuration::initial(&protocol, &[0, 1]).unwrap();
        let running = pids(&[0, 1]);
        let mut s = LapLeadChasing::new();
        let first = s.pick_in(&protocol, &config, &running, 0).unwrap();
        assert_eq!(first, ProcessId(0), "ties break toward the lowest id");
        let second = s.pick_in(&protocol, &config, &running, 1).unwrap();
        assert_eq!(second, ProcessId(1), "chases p0's overwrite");
        let third = s.pick_in(&protocol, &config, &running, 2).unwrap();
        assert_eq!(third, ProcessId(0), "chases p1's overwrite back");
    }

    #[test]
    fn lap_lead_chaser_is_deterministic_and_picks_running() {
        use crate::testing::TwoProcessSwapConsensus;
        use crate::Configuration;
        let protocol = TwoProcessSwapConsensus;
        let config = Configuration::initial(&protocol, &[0, 1]).unwrap();
        let picks = || {
            let mut s = LapLeadChasing::new();
            (0..6)
                .map(|i| {
                    let p = s.pick_in(&protocol, &config, &pids(&[0, 1]), i).unwrap();
                    assert!([ProcessId(0), ProcessId(1)].contains(&p));
                    p
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(), picks());
        // Nobody running: the chaser stops.
        let mut s = LapLeadChasing::new();
        assert_eq!(s.pick_in(&protocol, &config, &[], 0), None);
    }

    #[test]
    fn record_schedule_replays_to_the_same_configuration() {
        use crate::testing::TwoProcessSwapConsensus;
        use crate::Configuration;
        let protocol = TwoProcessSwapConsensus;
        let config = Configuration::initial(&protocol, &[0, 1]).unwrap();
        let (schedule, world) = record_schedule(&protocol, &config, &mut RoundRobin::new(), 10);
        assert_eq!(schedule.len(), 2, "both processes decide in one step each");
        assert!(world.all_decided());
        let mut replay = config.clone();
        crate::runner::replay(&protocol, &mut replay, &schedule).unwrap();
        assert_eq!(replay, world, "recorded schedules replay exactly");
        // The original configuration is untouched.
        assert!(!config.all_decided());
    }

    #[test]
    fn obstruction_then_solo_switches_phase() {
        let mut s = ObstructionThenSolo::new(3, ProcessId(0), 7);
        let running = pids(&[0, 1]);
        for i in 0..3 {
            assert!(s.pick(&running, i).is_some());
        }
        assert_eq!(s.pick(&running, 3), Some(ProcessId(0)));
        assert_eq!(s.pick(&running, 99), Some(ProcessId(0)));
        assert_eq!(s.pick(&pids(&[1]), 100), None);
    }
}
