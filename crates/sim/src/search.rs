//! Shared infrastructure for the exhaustive searches: a fingerprint-keyed
//! visited set and a parent-pointer arena for schedule reconstruction.
//!
//! These are the storage primitives underneath the strategy-driven search
//! core ([`crate::engine`]), which owns the exploration loop that the model
//! checker ([`crate::explore::ModelChecker`]), the lower-bound valency
//! oracle, and the adversary synthesizer all run on. The explored graphs'
//! nodes are [`Configuration`]s. Two costs dominated the naive
//! implementations:
//!
//! * **hashing** — `HashSet<Configuration>` SipHashes the entire object and
//!   process state on every probe. [`VisitedSet`] keys on a 64-bit FxHash
//!   fingerprint computed once per configuration, and keeps full
//!   configurations (cheap copy-on-write clones) only as collision buckets,
//!   so exactness never depends on fingerprint quality;
//! * **schedule cloning** — storing `Vec<ProcessId>` schedules in every
//!   stack/queue frame is `O(depth)` memory traffic per explored edge.
//!   [`ScheduleArena`] stores one `(parent, pid)` node per edge and
//!   materializes a schedule only when a witness is actually needed (a
//!   violation or a decision), which is the rare path.

use crate::config::Configuration;
use crate::ids::{Action, ProcessId};
use crate::protocol::Protocol;

/// Pass-through hasher for keys that are already hashes: the visited map's
/// keys are FxHash fingerprints, so re-hashing them buys nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrehashedKey(u64);

impl std::hash::Hasher for PrehashedKey {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PrehashedKey only accepts u64 keys");
    }

    fn write_u64(&mut self, key: u64) {
        // One multiply to spread entropy into the low bits the hash table
        // indexes by (FxHash's final multiply leaves them weaker).
        self.0 = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type PrehashedMap<V> =
    std::collections::HashMap<u64, V, std::hash::BuildHasherDefault<PrehashedKey>>;

/// A set of visited configurations, keyed by fingerprint with an exact-state
/// fallback.
///
/// Distinct configurations sharing a fingerprint land in the same bucket and
/// are told apart by full equality — the set is exact even under adversarial
/// collisions (see [`VisitedSet::with_fingerprint_mask`], which the tests
/// use to force every configuration into one bucket).
///
/// The opt-in [`VisitedSet::unsound_hash_compaction`] mode drops the stored
/// configurations and the exact fallback with them: membership becomes
/// fingerprint-presence only, which is **probabilistic** — a collision
/// silently merges two distinct states. Never the default; the model checker
/// reports the mode in its `CheckReport` and refuses to call a compacted run
/// a safety proof.
pub struct VisitedSet<P: Protocol> {
    buckets: PrehashedMap<Bucket<P>>,
    len: usize,
    mask: u64,
    compaction: bool,
    fallback_comparisons: usize,
}

/// One fingerprint's worth of configurations: the first occupant is stored
/// inline (no allocation on the no-collision fast path); genuine collisions
/// spill into `rest`, which stays unallocated while empty. Under hash
/// compaction nothing is stored at all (`first == None`).
struct Bucket<P: Protocol> {
    first: Option<Configuration<P>>,
    rest: Vec<Configuration<P>>,
}

impl<P: Protocol> Default for VisitedSet<P> {
    fn default() -> Self {
        VisitedSet {
            buckets: PrehashedMap::default(),
            len: 0,
            mask: u64::MAX,
            compaction: false,
            fallback_comparisons: 0,
        }
    }
}

impl<P: Protocol> VisitedSet<P> {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set pre-sized for roughly `expected` configurations, so the
    /// hot insert path does not pay incremental rehashing. Callers with a
    /// state budget pass a clamped fraction of it.
    pub fn with_capacity(expected: usize) -> Self {
        let mut set = Self::default();
        set.buckets.reserve(expected);
        set
    }

    /// An empty set whose fingerprints are masked with `mask` before use —
    /// a diagnostic hook that makes collisions arbitrarily likely (mask `0`
    /// sends every configuration to a single bucket), so tests can prove the
    /// exact-state fallback path is correct.
    pub fn with_fingerprint_mask(mask: u64) -> Self {
        VisitedSet {
            mask,
            ..Self::default()
        }
    }

    /// Switch to fingerprint-only membership (no stored configurations, no
    /// exact fallback). **Unsound**: fingerprint collisions merge distinct
    /// states silently, so any "no violation" verdict becomes probabilistic.
    /// Exists for memory-bound sweeps where an approximate answer is
    /// explicitly acceptable; never the default.
    #[must_use]
    pub fn unsound_hash_compaction(mut self) -> Self {
        self.compaction = true;
        self
    }

    fn key(&self, config: &Configuration<P>) -> u64 {
        config.fingerprint() & self.mask
    }

    /// The (masked) bucket key of `config` — exposed crate-internally so the
    /// striped sharded set ([`crate::shard`]) can compute keys through one
    /// shared instance and route each insert to a stripe.
    pub(crate) fn key_of(&self, config: &Configuration<P>) -> u64 {
        self.key(config)
    }

    /// An empty set with this set's mask and compaction policy — the stripe
    /// factory for [`crate::shard`]: each stripe deduplicates its share of
    /// the key space under the same exact-fallback discipline.
    pub(crate) fn stripe_clone(&self) -> Self {
        VisitedSet {
            buckets: PrehashedMap::default(),
            len: 0,
            mask: self.mask,
            compaction: self.compaction,
            fallback_comparisons: 0,
        }
    }

    /// Insert `config`, returning `true` if it was not already present.
    /// Stores a copy-on-write clone (refcount bumps, no state copied), and
    /// fingerprints the configuration exactly once.
    pub fn insert(&mut self, config: &Configuration<P>) -> bool {
        let key = self.key(config);
        self.insert_prekeyed(key, config)
    }

    /// [`VisitedSet::insert`] with the bucket key already computed (the
    /// sharded set computes keys outside the stripe lock).
    pub(crate) fn insert_prekeyed(&mut self, key: u64, config: &Configuration<P>) -> bool {
        use std::collections::hash_map::Entry;
        match self.buckets.entry(key) {
            Entry::Vacant(slot) => {
                slot.insert(Bucket {
                    first: (!self.compaction).then(|| config.clone()),
                    rest: Vec::new(),
                });
                self.len += 1;
                true
            }
            Entry::Occupied(mut slot) => {
                if self.compaction {
                    // Key present = assumed visited; no exact fallback.
                    return false;
                }
                let bucket = slot.get_mut();
                self.fallback_comparisons += 1 + bucket.rest.len();
                if bucket.first.as_ref() == Some(config) || bucket.rest.iter().any(|c| c == config)
                {
                    return false;
                }
                bucket.rest.push(config.clone());
                self.len += 1;
                true
            }
        }
    }

    /// Whether `config` is already present (under hash compaction: whether
    /// its fingerprint is).
    pub fn contains(&self, config: &Configuration<P>) -> bool {
        self.contains_prekeyed(self.key(config), config)
    }

    /// [`VisitedSet::contains`] with the bucket key already computed.
    pub(crate) fn contains_prekeyed(&self, key: u64, config: &Configuration<P>) -> bool {
        match self.buckets.get(&key) {
            Some(bucket) => {
                self.compaction
                    || bucket.first.as_ref() == Some(config)
                    || bucket.rest.iter().any(|c| c == config)
            }
            None => false,
        }
    }

    /// Number of distinct configurations inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many exact-equality comparisons the fallback path has performed —
    /// nonzero only when fingerprints collided (or a duplicate was probed).
    pub fn fallback_comparisons(&self) -> usize {
        self.fallback_comparisons
    }
}

impl<P: Protocol> std::fmt::Debug for VisitedSet<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VisitedSet")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("fallback_comparisons", &self.fallback_comparisons)
            .finish()
    }
}

/// Index of a node in a [`ScheduleArena`]. The root (empty schedule) is
/// [`ScheduleArena::ROOT`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The raw index, for snapshot serialization (crate-internal).
    pub(crate) fn to_raw(self) -> u32 {
        self.0
    }

    /// Rebuild from a raw index, for snapshot deserialization
    /// (crate-internal; callers validate range against the arena).
    pub(crate) fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }
}

/// A parent-pointer tree of schedule extensions.
///
/// Each explored edge `parent --action--> child` records one arena node; the
/// schedule reaching a node is reconstructed by walking parent pointers,
/// paying `O(depth)` exactly once per *witness* instead of once per *edge*.
/// Actions are either normal steps or crash transitions
/// ([`crate::Action`]); crash edges are tagged in a high bit of the packed
/// pid, so the node stays 12 bytes.
///
/// # Example
///
/// ```
/// use swapcons_sim::search::ScheduleArena;
/// use swapcons_sim::{Action, ProcessId};
///
/// let mut arena = ScheduleArena::new();
/// let a = arena.child(ScheduleArena::ROOT, ProcessId(0));
/// let b = arena.child_action(a, Action::Crash(ProcessId(1)));
/// assert_eq!(arena.depth(b), 2);
/// assert_eq!(arena.schedule(b), vec![ProcessId(0), ProcessId(1)]);
/// assert_eq!(
///     arena.actions(b),
///     vec![Action::Step(ProcessId(0)), Action::Crash(ProcessId(1))],
/// );
/// assert_eq!(arena.schedule(ScheduleArena::ROOT), vec![]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ScheduleArena {
    /// `(parent, tagged pid, depth)` per node, packed to 12 bytes; depth is
    /// cached so the hot path (depth cutoff tests) never walks the chain.
    /// The pid's [`ScheduleArena::CRASH_BIT`] marks a crash edge.
    nodes: Vec<(NodeId, u32, u32)>,
}

impl ScheduleArena {
    /// The root node: the empty schedule.
    pub const ROOT: NodeId = NodeId(u32::MAX);

    /// High bit of the packed pid marking a crash edge.
    const CRASH_BIT: u32 = 1 << 31;

    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the step edge `parent --pid-->` and return the child's id —
    /// shorthand for [`ScheduleArena::child_action`] with a step action.
    ///
    /// # Panics
    ///
    /// Panics if the arena exceeds `u32::MAX - 1` nodes or `pid` exceeds
    /// `2^31 - 1` (far beyond any explorable instance).
    pub fn child(&mut self, parent: NodeId, pid: ProcessId) -> NodeId {
        self.child_action(parent, Action::Step(pid))
    }

    /// Record the edge `parent --action-->` and return the child's id.
    ///
    /// # Panics
    ///
    /// Panics if the arena exceeds `u32::MAX - 1` nodes or the pid exceeds
    /// `2^31 - 1` (far beyond any explorable instance).
    pub fn child_action(&mut self, parent: NodeId, action: Action) -> NodeId {
        let depth = self.depth(parent) as u32 + 1;
        let tagged = Self::encode_action(action);
        self.nodes.push((parent, tagged, depth));
        let id = u32::try_from(self.nodes.len() - 1).expect("arena fits u32");
        assert!(id != u32::MAX, "arena full");
        NodeId(id)
    }

    /// Schedule length at `node` (0 for the root).
    pub fn depth(&self, node: NodeId) -> usize {
        if node == Self::ROOT {
            0
        } else {
            self.nodes[node.0 as usize].2 as usize
        }
    }

    /// Encode an action into the packed-pid form of
    /// [`ScheduleArena::raw_nodes`] — exposed crate-internally so the
    /// sharded arenas ([`crate::shard`]) store edges in the exact format a
    /// drained sequential arena expects.
    pub(crate) fn encode_action(action: Action) -> u32 {
        let pid32 = u32::try_from(action.pid().index()).expect("process id fits u32");
        assert!(pid32 & Self::CRASH_BIT == 0, "process id fits 31 bits");
        if action.is_crash() {
            pid32 | Self::CRASH_BIT
        } else {
            pid32
        }
    }

    /// Inverse of [`ScheduleArena::encode_action`] (crate-internal).
    pub(crate) fn decode_action(tagged: u32) -> Action {
        Self::decode(tagged)
    }

    /// Decode one packed pid back into its action.
    fn decode(tagged: u32) -> Action {
        let pid = ProcessId((tagged & !Self::CRASH_BIT) as usize);
        if tagged & Self::CRASH_BIT != 0 {
            Action::Crash(pid)
        } else {
            Action::Step(pid)
        }
    }

    /// Materialize the schedule from the root to `node` as process ids —
    /// the cold path, called only when a witness must be reported. Crash
    /// edges contribute the crashing process's id; use
    /// [`ScheduleArena::actions`] when the step/crash distinction matters
    /// (it always does for replay of crash-injected searches).
    pub fn schedule(&self, node: NodeId) -> Vec<ProcessId> {
        self.actions(node).iter().map(|a| a.pid()).collect()
    }

    /// Materialize the action sequence from the root to `node` — like
    /// [`ScheduleArena::schedule`] but keeping crash transitions distinct,
    /// so the result replays exactly via
    /// [`crate::runner::replay_actions`].
    pub fn actions(&self, node: NodeId) -> Vec<Action> {
        let mut out = Vec::with_capacity(self.depth(node));
        let mut cur = node;
        while cur != Self::ROOT {
            let (parent, tagged, _) = self.nodes[cur.0 as usize];
            out.push(Self::decode(tagged));
            cur = parent;
        }
        out.reverse();
        out
    }

    /// The action labelling the edge into `node` (`None` for the root).
    pub fn action(&self, node: NodeId) -> Option<Action> {
        if node == Self::ROOT {
            None
        } else {
            Some(Self::decode(self.nodes[node.0 as usize].1))
        }
    }

    /// Number of recorded edges.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no edge has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The raw node table, for snapshot serialization (crate-internal).
    pub(crate) fn raw_nodes(&self) -> &[(NodeId, u32, u32)] {
        &self.nodes
    }

    /// Rebuild an arena from a raw node table, validating the parent-pointer
    /// and cached-depth invariants (crate-internal; snapshot decoding must
    /// never construct an arena whose accessors could panic or loop).
    pub(crate) fn from_raw_nodes(nodes: Vec<(NodeId, u32, u32)>) -> Result<Self, String> {
        for (i, &(parent, _, depth)) in nodes.iter().enumerate() {
            let parent_depth = if parent == Self::ROOT {
                0
            } else {
                // Parents must precede children: guarantees acyclicity.
                if parent.0 as usize >= i {
                    return Err(format!(
                        "arena node {i} has forward or self parent {}",
                        parent.0
                    ));
                }
                nodes[parent.0 as usize].2
            };
            if depth != parent_depth + 1 {
                return Err(format!(
                    "arena node {i} caches depth {depth}, parent implies {}",
                    parent_depth + 1
                ));
            }
        }
        Ok(ScheduleArena { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;
    use crate::testing::TwoProcessSwapConsensus;

    fn init(inputs: &[u64]) -> Configuration<TwoProcessSwapConsensus> {
        Configuration::initial(&TwoProcessSwapConsensus, inputs).unwrap()
    }

    #[test]
    fn visited_set_dedups_equal_configurations() {
        let mut set = VisitedSet::new();
        let a = init(&[0, 1]);
        assert!(set.insert(&a));
        assert!(!set.insert(&a.clone()), "clone is the same configuration");
        let mut b = init(&[0, 1]);
        assert!(!set.insert(&b), "equal content, different storage");
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert!(set.insert(&b), "stepped configuration is new");
        assert_eq!(set.len(), 2);
        assert!(set.contains(&a) && set.contains(&b));
    }

    #[test]
    fn collision_guard_exact_fallback_is_exercised() {
        // Mask 0 forces EVERY configuration into one bucket: the set must
        // still distinguish distinct states, via full-equality comparisons.
        let mut set = VisitedSet::with_fingerprint_mask(0);
        let a = init(&[0, 1]);
        let mut b = init(&[0, 1]);
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        let mut c = b.clone();
        c.step(&TwoProcessSwapConsensus, ProcessId(1)).unwrap();
        assert!(set.insert(&a));
        assert!(set.insert(&b), "colliding fingerprints, distinct states");
        assert!(set.insert(&c));
        assert_eq!(set.len(), 3);
        assert!(!set.insert(&a) && !set.insert(&b) && !set.insert(&c));
        assert!(
            set.fallback_comparisons() > 0,
            "the exact-state fallback path must have been taken"
        );
        assert!(set.contains(&a) && set.contains(&b) && set.contains(&c));
    }

    #[test]
    fn unmasked_probes_rarely_fall_back() {
        // With real 64-bit fingerprints, distinct small states should not
        // collide; fallback comparisons come only from duplicate probes.
        let mut set = VisitedSet::new();
        let a = init(&[0, 1]);
        let mut b = a.clone();
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert!(set.insert(&a));
        assert!(set.insert(&b));
        assert_eq!(set.fallback_comparisons(), 0);
    }

    #[test]
    fn hash_compaction_merges_colliding_fingerprints() {
        // The documented unsoundness of the opt-in mode, pinned down: with a
        // zero mask every configuration shares a key, and compaction calls
        // all but the first "visited".
        let mut set = VisitedSet::with_fingerprint_mask(0).unsound_hash_compaction();
        let a = init(&[0, 1]);
        let mut b = a.clone();
        b.step(&TwoProcessSwapConsensus, ProcessId(0)).unwrap();
        assert!(set.insert(&a));
        assert!(!set.insert(&b), "distinct state silently merged");
        assert_eq!(set.len(), 1);
        assert!(set.contains(&b), "membership is fingerprint-presence only");
        // With real 64-bit fingerprints the same pair stays distinct.
        let mut set = VisitedSet::new().unsound_hash_compaction();
        assert!(set.insert(&a));
        assert!(set.insert(&b));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn arena_reconstructs_schedules() {
        let mut arena = ScheduleArena::new();
        assert!(arena.is_empty());
        let a = arena.child(ScheduleArena::ROOT, ProcessId(1));
        let b = arena.child(a, ProcessId(0));
        let c = arena.child(a, ProcessId(2)); // sibling branch
        assert_eq!(arena.depth(ScheduleArena::ROOT), 0);
        assert_eq!(arena.depth(b), 2);
        assert_eq!(arena.schedule(b), vec![ProcessId(1), ProcessId(0)]);
        assert_eq!(arena.schedule(c), vec![ProcessId(1), ProcessId(2)]);
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn arena_round_trips_crash_edges() {
        let mut arena = ScheduleArena::new();
        let a = arena.child_action(ScheduleArena::ROOT, Action::Crash(ProcessId(2)));
        let b = arena.child(a, ProcessId(0));
        assert_eq!(arena.action(a), Some(Action::Crash(ProcessId(2))));
        assert_eq!(arena.action(b), Some(Action::Step(ProcessId(0))));
        assert_eq!(arena.action(ScheduleArena::ROOT), None);
        assert_eq!(
            arena.actions(b),
            vec![Action::Crash(ProcessId(2)), Action::Step(ProcessId(0))]
        );
        // The pid projection keeps crash entries (as bare pids).
        assert_eq!(arena.schedule(b), vec![ProcessId(2), ProcessId(0)]);
        assert_eq!(arena.depth(b), 2);
    }

    #[test]
    fn arena_raw_round_trip_validates() {
        let mut arena = ScheduleArena::new();
        let a = arena.child(ScheduleArena::ROOT, ProcessId(0));
        let _ = arena.child_action(a, Action::Crash(ProcessId(1)));
        let rebuilt = ScheduleArena::from_raw_nodes(arena.raw_nodes().to_vec()).unwrap();
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt.actions(NodeId(1)), arena.actions(NodeId(1)));
        // Forward parent pointers and inconsistent depths are rejected.
        assert!(ScheduleArena::from_raw_nodes(vec![(NodeId(0), 0, 1)]).is_err());
        assert!(ScheduleArena::from_raw_nodes(vec![(NodeId(5), 0, 1)]).is_err());
        assert!(ScheduleArena::from_raw_nodes(vec![(ScheduleArena::ROOT, 0, 7)]).is_err());
    }
}
