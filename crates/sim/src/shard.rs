//! Sharded (multi-worker) search driver: work-stealing exploration with
//! sequential-parity guarantees.
//!
//! This module is the engine's parallel mode (ROADMAP item 1). It keeps the
//! exploration *semantics* of [`crate::engine`] — the same per-node hook
//! order, the same exact budget discipline, the same witness materialization
//! — while spreading node expansion across a pool of `std::thread` workers
//! (the vendored [`workpool`] crate; the build is offline, so no
//! rayon/crossbeam).
//!
//! # Threading model: depth-synchronized waves
//!
//! Workers drain one **wave** (all frontier entries at the current depth) in
//! parallel through per-worker deques with steal-half balancing. Children
//! discovered during wave `d` are deduplicated globally (see
//! [`StripedDedup`]) and accumulated in per-worker *next-wave* buffers; when
//! the pool's pending-work counter reaches zero the workers rendezvous at a
//! barrier and a single leader swaps the buffers in as wave `d + 1`. The
//! wave discipline is what makes the parallel search **deterministic** where
//! it matters:
//!
//! * every configuration is discovered at its *minimum* depth, independent
//!   of thread count and steal order — so the per-wave discovered sets, and
//!   with them `states`, `terminal_states`, `deepest`, and the truncation
//!   flags of [`SearchStats`], are reproducible run to run;
//! * on a **complete** search those counters equal the sequential engine's
//!   exactly (the reachable set does not depend on exploration order), which
//!   is the parity the CI gate enforces for `with_threads(t)`, t ∈ {1,2,4};
//! * a checkpoint drained mid-run (see below) resumes — sequentially, FIFO —
//!   to the byte-identical report of the uninterrupted sharded run.
//!
//! `peak_frontier` is the one deliberately *approximate* counter (a
//! high-water mark sampled through an atomic); it is excluded from every
//! parity gate, exactly as it is excluded from the checkpoint-resume
//! parity tests.
//!
//! # Global termination
//!
//! "Every deque is empty" is **not** a sound wave-end signal: a steal-half
//! holds items in a private buffer mid-transfer. Wave end is therefore
//! detected by quiescence of [`workpool::WorkQueues::pending`] — a counter
//! incremented at publication and decremented only after a node is fully
//! *processed*. The stripe-lock + work-counter protocol is model-checked by
//! the `swapcons-conc` DPOR checker (`crates/conc/tests/stripe_pool.rs`).
//!
//! # Checkpoints, deadlines, and stops
//!
//! All world-stopping events funnel through one rendezvous: a worker that
//! wants one (checkpoint cadence reached, wall-clock deadline expired,
//! visitor said [`Control::Stop`], or wave drained) raises a shared flag;
//! every worker parks at a barrier; the leader (worker 0) performs the
//! single-threaded action — draining a [`SearchImage`], marking
//! `deadline_truncated` (exactly once, satisfying the
//! [`Engine::with_deadline`](crate::engine::Engine::with_deadline) contract
//! in sharded mode), swapping waves, or finalizing — and releases the pool.
//! Because every in-flight node completes before its worker parks, the
//! drained image is a *consistent* sequential image: the arena re-sorted by
//! (depth, owner, index), discovery order root-first, and the frontier
//! ordered shallowest-first so a FIFO resume preserves the min-depth
//! invariant.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use workpool::WorkQueues;

use crate::canon::DedupSet;
use crate::config::{Configuration, SimError};
use crate::engine::{
    panic_message, Budget, Checkpointing, Control, Expansion, SearchImage, SearchStats,
};
use crate::ids::{Action, ProcessId};
use crate::protocol::Protocol;
use crate::search::{NodeId, ScheduleArena};

/// Maximum worker count: the owner tag of a `GNode` packs into 5 bits.
pub const MAX_THREADS: usize = 32;

/// Bits of a packed [`GNode`] holding the node's local index.
const IDX_BITS: u32 = 27;

/// A global node id: owner shard in the top 5 bits, index into that shard's
/// arena in the low 27. `u32::MAX` is the root (empty schedule), mirroring
/// [`ScheduleArena::ROOT`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct GNode(u32);

impl GNode {
    /// The root of the schedule tree (no owner; depth 0).
    const ROOT: GNode = GNode(u32::MAX);

    fn pack(owner: usize, idx: usize) -> GNode {
        assert!(owner < MAX_THREADS, "owner tag fits 5 bits");
        assert!(idx < (1 << IDX_BITS), "shard arena overflow");
        let raw = ((owner as u32) << IDX_BITS) | idx as u32;
        assert!(raw != u32::MAX, "packed id collides with the root sentinel");
        GNode(raw)
    }

    fn owner(self) -> usize {
        (self.0 >> IDX_BITS) as usize
    }

    fn idx(self) -> usize {
        (self.0 & ((1 << IDX_BITS) - 1)) as usize
    }
}

/// Per-shard schedule arenas with owner-tagged node ids: each worker appends
/// nodes under its own (uncontended) lock, and witness materialization walks
/// parent chains across shards locking one shard at a time — never two at
/// once, so there is no lock-order deadlock.
struct ShardedArenas {
    /// One arena per worker: `(parent, packed action, depth)` per node, the
    /// packed-action format of [`ScheduleArena::raw_nodes`].
    shards: Vec<Mutex<Vec<(GNode, u32, u32)>>>,
}

impl ShardedArenas {
    fn new(workers: usize) -> Self {
        ShardedArenas {
            shards: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Append the edge `parent --action-->` to `owner`'s shard.
    fn record(&self, owner: usize, parent: GNode, action: Action, depth: u32) -> GNode {
        let mut shard = self.shards[owner].lock().expect("shard poisoned");
        let idx = shard.len();
        shard.push((parent, ScheduleArena::encode_action(action), depth));
        GNode::pack(owner, idx)
    }

    /// Materialize the action sequence from the root to `node` — the cold
    /// witness path, locking one shard per hop.
    fn actions_of(&self, node: GNode) -> Vec<Action> {
        let mut out = Vec::new();
        let mut cur = node;
        while cur != GNode::ROOT {
            let (parent, tagged) = {
                let shard = self.shards[cur.owner()].lock().expect("shard poisoned");
                let (parent, tagged, _) = shard[cur.idx()];
                (parent, tagged)
            };
            out.push(ScheduleArena::decode_action(tagged));
            cur = parent;
        }
        out.reverse();
        out
    }
}

/// Outcome of a bounded striped insert — the sharded counterpart of the
/// sequential engine's budget-check-then-insert sequence, folded into one
/// atomic decision per configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StripedInsert {
    /// Genuinely new and within the state budget: the caller fires the
    /// `edge(is_new = true)` hook and enqueues the child.
    New,
    /// Already present, budget not exhausted: the caller fires the
    /// `edge(is_new = false)` hook (the sequential engine calls `edge` for
    /// every in-budget duplicate too).
    Duplicate,
    /// Would have been new, but the state budget is exhausted: the caller
    /// sets `budget_truncated` and drops the child without any hook —
    /// mirroring the sequential engine, which checks the budget *before*
    /// the edge call.
    BudgetNew,
    /// A duplicate probed at/over the state budget: dropped without a hook
    /// and **without** setting `budget_truncated`, which is what keeps an
    /// exactly-`max_states` space `complete = true` (pinned since PR 2).
    BudgetDuplicate,
}

/// A striped, lock-sharded [`DedupSet`] with an exact global state budget.
///
/// One **keyer** instance computes routing keys — for symmetry-reduced
/// searches that means the [`CanonicalVisitedSet`](crate::canon::CanonicalVisitedSet)
/// orbit key, whose lazily built `OnceLock` inverse-permutation tables are
/// thereby shared read-only across all workers. The key (an orbit invariant,
/// masked by the collision-forcing test hook exactly as in the sequential
/// sets) selects a stripe; each stripe is an independent copy of the
/// underlying set (same mode, group, mask, and compaction policy) behind its
/// own mutex, preserving the exact-fallback discipline per stripe.
///
/// The state budget is a global atomic reserved by compare-and-swap
/// *before* a new configuration is stored, so `len()` can never exceed
/// `max_states` and the `complete` flag stays exact at the boundary.
pub struct StripedDedup<P: Protocol> {
    keyer: DedupSet<P>,
    stripes: Vec<Mutex<DedupSet<P>>>,
    discovered: AtomicUsize,
    max_states: usize,
}

impl<P: Protocol> StripedDedup<P> {
    /// Build a striped set from a freshly configured (empty) `template`:
    /// the template becomes the shared keyer, and each of the `stripes`
    /// stripes is an empty clone of its mode/group/mask/compaction.
    ///
    /// # Panics
    ///
    /// Panics if `stripes == 0` or `template` is non-empty.
    pub fn new(template: DedupSet<P>, stripes: usize, max_states: usize) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        assert!(template.is_empty(), "the stripe template must be empty");
        StripedDedup {
            stripes: (0..stripes)
                .map(|_| Mutex::new(template.stripe_clone()))
                .collect(),
            keyer: template,
            discovered: AtomicUsize::new(0),
            max_states,
        }
    }

    fn stripe_of(&self, key: u64) -> &Mutex<DedupSet<P>> {
        &self.stripes[(key % self.stripes.len() as u64) as usize]
    }

    /// Insert the root configuration, bypassing the state budget — the
    /// sequential engine seeds its dedup set with the root unconditionally,
    /// and parity requires the same here (even for `max_states == 0`).
    pub fn insert_root(&self, protocol: &P, config: &Configuration<P>) {
        let key = self.keyer.key_of(protocol, config);
        let fresh = self
            .stripe_of(key)
            .lock()
            .expect("stripe poisoned")
            .insert_prekeyed(key, protocol, config);
        assert!(fresh, "the root must be the first insert");
        self.discovered.fetch_add(1, Ordering::SeqCst);
    }

    /// Budget-bounded insert; see [`StripedInsert`] for the four outcomes
    /// and how they mirror the sequential engine's order of checks.
    ///
    /// The only cross-stripe coupling is the budget counter, and it is
    /// exact: a slot is reserved by CAS before the store, so concurrent
    /// inserts can never overshoot `max_states`. (At the budget *boundary*
    /// the `Duplicate`/`BudgetDuplicate` classification reads the counter
    /// non-transactionally; both outcomes are observable only on searches
    /// that are already incomplete, so no `complete = true` verdict ever
    /// depends on the race.)
    pub fn insert(&self, protocol: &P, config: &Configuration<P>) -> StripedInsert {
        let key = self.keyer.key_of(protocol, config);
        let mut stripe = self.stripe_of(key).lock().expect("stripe poisoned");
        if stripe.contains_prekeyed(key, protocol, config) {
            return if self.discovered.load(Ordering::SeqCst) >= self.max_states {
                StripedInsert::BudgetDuplicate
            } else {
                StripedInsert::Duplicate
            };
        }
        let reserved = self
            .discovered
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |d| {
                (d < self.max_states).then_some(d + 1)
            });
        match reserved {
            Ok(_) => {
                let fresh = stripe.insert_prekeyed(key, protocol, config);
                debug_assert!(fresh, "insert under the stripe lock after a miss");
                StripedInsert::New
            }
            Err(_) => StripedInsert::BudgetNew,
        }
    }

    /// Whether the configuration (or its orbit) is already present.
    pub fn contains(&self, protocol: &P, config: &Configuration<P>) -> bool {
        let key = self.keyer.key_of(protocol, config);
        self.stripe_of(key)
            .lock()
            .expect("stripe poisoned")
            .contains_prekeyed(key, protocol, config)
    }

    /// Distinct configurations (orbits) inserted, across all stripes.
    pub fn len(&self) -> usize {
        self.discovered.load(Ordering::SeqCst)
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Order of the dedup group (1 for exact mode).
    pub fn group_order(&self) -> usize {
        self.keyer.group_order()
    }

    /// Whether the dedup group is a degraded subgroup of the declared
    /// symmetry (see [`crate::Canonicalizer::degraded`]).
    pub fn degraded(&self) -> bool {
        self.keyer.degraded()
    }

    /// Exact-equality fallback comparisons summed across stripes.
    pub fn fallback_comparisons(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").fallback_comparisons())
            .sum()
    }

    /// Per-stripe fallback counters, for the forced-collision tests.
    #[cfg(test)]
    fn stripe_fallbacks(&self) -> Vec<usize> {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").fallback_comparisons())
            .collect()
    }
}

impl<P: Protocol> std::fmt::Debug for StripedDedup<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedDedup")
            .field("stripes", &self.stripes.len())
            .field("len", &self.len())
            .field("max_states", &self.max_states)
            .finish()
    }
}

/// Wall-clock deadline shared across the worker pool. Any worker may
/// *raise* it (compare-and-swap, so detection is announced once); only the
/// rendezvous leader *marks* `deadline_truncated` — in its single-threaded
/// section, hence exactly once — and only if work was actually pending, the
/// same condition the sequential loop applies.
struct DeadlineState {
    started: Instant,
    limit: Option<Duration>,
    raised: AtomicBool,
}

impl DeadlineState {
    fn new(limit: Option<Duration>) -> Self {
        DeadlineState {
            started: Instant::now(),
            limit,
            raised: AtomicBool::new(false),
        }
    }

    fn expired(&self) -> bool {
        self.limit.is_some_and(|d| self.started.elapsed() >= d)
    }

    fn raise(&self) {
        let _ = self
            .raised
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst);
    }

    fn is_raised(&self) -> bool {
        self.raised.load(Ordering::SeqCst)
    }
}

/// Read-only view of a node's position in the sharded schedule tree, handed
/// to [`ShardVisitor`] hooks. Materializing the schedule walks the
/// cross-shard parent chain (locking one shard at a time); like the
/// sequential engine's lazy `EdgeCtx`, nothing is allocated unless a hook
/// actually asks for a witness.
pub struct WitnessRef<'a> {
    arenas: &'a ShardedArenas,
    node: GNode,
    /// For edge hooks: the action appended after `node`'s own chain (the
    /// edge's arena node may not exist — duplicate edges never get one).
    action: Option<Action>,
}

impl WitnessRef<'_> {
    /// The action sequence from the root to (and including, for edge hooks)
    /// this position — replayable via [`crate::runner::replay_actions`].
    pub fn actions(&self) -> Vec<Action> {
        let mut out = self.arenas.actions_of(self.node);
        if let Some(action) = self.action {
            out.push(action);
        }
        out
    }

    /// The schedule (pid projection of [`WitnessRef::actions`]).
    pub fn schedule(&self) -> Vec<ProcessId> {
        self.actions().iter().map(|a| a.pid()).collect()
    }
}

impl std::fmt::Debug for WitnessRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WitnessRef")
            .field("node", &self.node)
            .field("action", &self.action)
            .finish()
    }
}

/// Per-worker visitor for the sharded driver — the counterpart of
/// [`crate::engine::Visitor`], with the same hook order per processed node:
/// `enter` (with expansion candidates), then one `edge` or `step_error`
/// call per in-budget candidate. Each worker owns one visitor; the caller
/// merges worker results after the join.
pub trait ShardVisitor<P: Protocol>: Send {
    /// Called once per claimed node.
    fn enter(
        &mut self,
        protocol: &P,
        config: &Configuration<P>,
        witness: &WitnessRef<'_>,
        candidates: &[Action],
    ) -> Control;

    /// Called for every generated in-budget edge, including edges to
    /// already-known configurations (`is_new == false`), before the child
    /// is enqueued. `decided` is always `None` for crash edges.
    fn edge(
        &mut self,
        _protocol: &P,
        _child: &Configuration<P>,
        _decided: Option<u64>,
        _is_new: bool,
        _witness: &WitnessRef<'_>,
    ) -> Control {
        Control::Continue
    }

    /// Called when the simulator rejects a candidate step (or the protocol
    /// panics). `Continue` skips the edge and marks the search incomplete;
    /// `Stop` aborts.
    fn step_error(
        &mut self,
        _protocol: &P,
        _error: SimError,
        _witness: &WitnessRef<'_>,
    ) -> Control {
        Control::Stop
    }
}

/// Options for [`run_sharded`].
#[derive(Debug)]
pub struct ShardOptions {
    /// Worker count (2..=[`MAX_THREADS`]; a single-threaded caller should
    /// use the sequential engine instead).
    pub threads: usize,
    /// Exact search budgets, identical in meaning to the sequential
    /// engine's. The frontier bound is enforced against the global pending
    /// count; at the exact boundary the check is best-effort (it can bind
    /// one child early or late vs the sequential order), which only affects
    /// searches that are already incomplete.
    pub budget: Budget,
    /// Wall-clock deadline; see `DeadlineState` on the exactly-once
    /// `deadline_truncated` discipline.
    pub deadline: Option<Duration>,
}

/// A claimed work item: the configuration, its global node id, and its
/// (minimum) depth.
type Item<P> = (Configuration<P>, GNode, u32);

/// All cross-worker state of one sharded run.
struct Shared<'a, P: Protocol> {
    pool: WorkQueues<Item<P>>,
    /// Per-worker next-wave buffers; swapped into the pool by the leader at
    /// wave end.
    next: Vec<Mutex<Vec<Item<P>>>>,
    arenas: ShardedArenas,
    dedup: &'a StripedDedup<P>,
    barrier: Barrier,
    deadline: DeadlineState,
    budget: Budget,
    // Deterministic counters (see the module docs for why).
    states: AtomicUsize,
    terminal: AtomicUsize,
    deepest: AtomicUsize,
    // Approximate high-water mark; excluded from parity.
    in_frontier: AtomicUsize,
    peak_frontier: AtomicUsize,
    // Checkpoint cadence: next `states` threshold that triggers a drain
    // (usize::MAX when checkpointing is off).
    next_checkpoint_at: AtomicUsize,
    ckpt_interval: usize,
    // Rendezvous protocol.
    world: AtomicBool,
    done: AtomicBool,
    ckpt_due: AtomicBool,
    // Stats flags, hoisted into shared state.
    stopped: AtomicBool,
    depth_truncated: AtomicBool,
    budget_truncated: AtomicBool,
    deadline_truncated: AtomicBool,
    paused: AtomicBool,
}

impl<P: Protocol> Shared<'_, P> {
    /// Ask for a rendezvous: every worker parks at the barrier as soon as
    /// it finishes its current node.
    fn propose_world(&self) {
        self.world.store(true, Ordering::SeqCst);
    }

    /// Total items parked in next-wave buffers.
    fn next_len(&self) -> usize {
        self.next
            .iter()
            .map(|b| b.lock().expect("buffer poisoned").len())
            .sum()
    }

    /// Drain the current (stopped) world into a sequential [`SearchImage`].
    /// Only the rendezvous leader calls this, while every other worker is
    /// parked — so all locks are uncontended and the pending counter equals
    /// the sum of deque lengths exactly.
    fn drain_image(&self, deadline_truncated: bool) -> SearchImage {
        // Snapshot every shard arena and establish the sequential order:
        // (depth, owner, local index). Parents have strictly smaller depth,
        // so they sort before their children, which is exactly the
        // invariant `ScheduleArena::from_raw_nodes` validates.
        let shards: Vec<Vec<(GNode, u32, u32)>> = self
            .arenas
            .shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").clone())
            .collect();
        let mut order: Vec<(u32, usize, usize)> = shards
            .iter()
            .enumerate()
            .flat_map(|(owner, nodes)| {
                nodes
                    .iter()
                    .enumerate()
                    .map(move |(idx, &(_, _, depth))| (depth, owner, idx))
            })
            .collect();
        order.sort_unstable();
        let mut new_ids: Vec<Vec<u32>> = shards.iter().map(|s| vec![u32::MAX; s.len()]).collect();
        for (seq, &(_, owner, idx)) in order.iter().enumerate() {
            new_ids[owner][idx] = u32::try_from(seq).expect("arena fits u32");
        }
        let remap = |node: GNode| -> NodeId {
            if node == GNode::ROOT {
                ScheduleArena::ROOT
            } else {
                NodeId::from_raw(new_ids[node.owner()][node.idx()])
            }
        };
        let raw: Vec<(NodeId, u32, u32)> = order
            .iter()
            .map(|&(depth, owner, idx)| {
                let (parent, tagged, _) = shards[owner][idx];
                (remap(parent), tagged, depth)
            })
            .collect();
        let total = raw.len();
        let arena = ScheduleArena::from_raw_nodes(raw)
            .expect("sharded drain produces a depth-sorted, acyclic arena");
        // Every arena node is a distinct discovered configuration (orbit) —
        // duplicate edges never create nodes — so discovery order is just
        // the sorted arena order, root first.
        let discovery: Vec<NodeId> = std::iter::once(ScheduleArena::ROOT)
            .chain((0..total).map(|i| NodeId::from_raw(i as u32)))
            .collect();
        // Frontier: current-wave remnants first (all at depth d), then the
        // next-wave buffers (all at depth d+1) — shallowest-first, so a
        // FIFO resume preserves the min-depth invariant.
        let mut frontier: Vec<NodeId> = Vec::new();
        for deque in self.pool.freeze() {
            frontier.extend(deque.into_iter().map(|(_, node, _)| remap(node)));
        }
        for buffer in &self.next {
            let buffer = buffer.lock().expect("buffer poisoned");
            frontier.extend(buffer.iter().map(|&(_, node, _)| remap(node)));
        }
        let stats = SearchStats {
            states: self.states.load(Ordering::SeqCst),
            terminal_states: self.terminal.load(Ordering::SeqCst),
            deepest: self.deepest.load(Ordering::SeqCst),
            peak_frontier: self.peak_frontier.load(Ordering::SeqCst).max(1),
            stopped: false,
            depth_truncated: self.depth_truncated.load(Ordering::SeqCst),
            budget_truncated: self.budget_truncated.load(Ordering::SeqCst),
            deadline_truncated,
            paused: false,
        };
        SearchImage {
            stats,
            arena,
            discovery,
            frontier,
        }
    }
}

/// Run a sharded search from `root`, calling one [`ShardVisitor`] per
/// worker, and return the merged [`SearchStats`]. The root is inserted into
/// `dedup` here (pass a fresh set); `visitors.len()` selects the worker
/// count and must equal `opts.threads`.
///
/// See the module docs for the determinism and parity guarantees. The
/// checkpoint `sink`, when present, observes drained sequential images on
/// roughly the configured cadence (the sharded cadence is approximate: the
/// drain lands at the first rendezvous after the threshold is crossed);
/// returning [`Control::Stop`] from the sink pauses the run with
/// `paused = true`, exactly like the sequential engine.
///
/// # Panics
///
/// Panics if `opts.threads` is not in `2..=MAX_THREADS` or does not match
/// `visitors.len()`.
pub fn run_sharded<P, E, V>(
    protocol: &P,
    root: Configuration<P>,
    dedup: &StripedDedup<P>,
    opts: &ShardOptions,
    make_expansion: impl Fn() -> E,
    visitors: &mut [V],
    ckpt: Option<Checkpointing<'_>>,
) -> SearchStats
where
    P: Protocol,
    E: Expansion<P> + Send,
    V: ShardVisitor<P>,
{
    let threads = opts.threads;
    assert!(
        (2..=MAX_THREADS).contains(&threads),
        "sharded runs take 2..={MAX_THREADS} workers (got {threads}); use the sequential engine for 1"
    );
    assert!(visitors.len() == threads, "one visitor per worker");
    let ckpt_interval = ckpt.as_ref().map_or(0, |c| c.interval.max(1));
    let shared = Shared {
        pool: WorkQueues::new(threads),
        next: (0..threads).map(|_| Mutex::new(Vec::new())).collect(),
        arenas: ShardedArenas::new(threads),
        dedup,
        barrier: Barrier::new(threads),
        deadline: DeadlineState::new(opts.deadline),
        budget: opts.budget,
        states: AtomicUsize::new(0),
        terminal: AtomicUsize::new(0),
        deepest: AtomicUsize::new(0),
        in_frontier: AtomicUsize::new(1),
        peak_frontier: AtomicUsize::new(1),
        next_checkpoint_at: AtomicUsize::new(if ckpt.is_some() {
            ckpt_interval
        } else {
            usize::MAX
        }),
        ckpt_interval,
        world: AtomicBool::new(false),
        done: AtomicBool::new(false),
        ckpt_due: AtomicBool::new(false),
        stopped: AtomicBool::new(false),
        depth_truncated: AtomicBool::new(false),
        budget_truncated: AtomicBool::new(false),
        deadline_truncated: AtomicBool::new(false),
        paused: AtomicBool::new(false),
    };
    dedup.insert_root(protocol, &root);
    shared.pool.push(0, (root, GNode::ROOT, 0));
    let mut ckpt_slot = ckpt;
    std::thread::scope(|scope| {
        for (w, visitor) in visitors.iter_mut().enumerate() {
            let shared = &shared;
            let expansion = make_expansion();
            let ckpt_for_leader = if w == 0 { ckpt_slot.take() } else { None };
            scope.spawn(move || {
                worker_loop(w, protocol, shared, expansion, visitor, ckpt_for_leader)
            });
        }
    });
    SearchStats {
        states: shared.states.load(Ordering::SeqCst),
        terminal_states: shared.terminal.load(Ordering::SeqCst),
        deepest: shared.deepest.load(Ordering::SeqCst),
        peak_frontier: shared.peak_frontier.load(Ordering::SeqCst).max(1),
        stopped: shared.stopped.load(Ordering::SeqCst),
        depth_truncated: shared.depth_truncated.load(Ordering::SeqCst),
        budget_truncated: shared.budget_truncated.load(Ordering::SeqCst),
        deadline_truncated: shared.deadline_truncated.load(Ordering::SeqCst),
        paused: shared.paused.load(Ordering::SeqCst),
    }
}

/// One worker's drain loop; worker 0 doubles as the rendezvous leader.
fn worker_loop<P, E, V>(
    w: usize,
    protocol: &P,
    shared: &Shared<'_, P>,
    mut expansion: E,
    visitor: &mut V,
    mut ckpt: Option<Checkpointing<'_>>,
) where
    P: Protocol,
    E: Expansion<P> + Send,
    V: ShardVisitor<P>,
{
    let mut candidates: Vec<Action> = Vec::new();
    let mut child_scratch: Option<Configuration<P>> = None;
    loop {
        if shared.world.load(Ordering::SeqCst) {
            if rendezvous(w, shared, &mut ckpt) {
                return;
            }
            continue;
        }
        // Satellite-6 deadline hoist: checked in shared worker state before
        // every claim, mirroring the sequential loop's check before every
        // pop. Whether it actually truncates (work pending) or the search
        // just finished in time is decided by the leader.
        if shared.deadline.expired() {
            shared.deadline.raise();
            shared.propose_world();
            continue;
        }
        match shared.pool.pop(w) {
            None => {
                if shared.pool.pending() == 0 {
                    // Wave drained (the counter proves no steal holds items
                    // privately): rendezvous for the swap.
                    shared.propose_world();
                } else {
                    std::thread::yield_now();
                }
            }
            Some((config, gnode, depth)) => {
                shared.in_frontier.fetch_sub(1, Ordering::SeqCst);
                let control = process_node(
                    w,
                    protocol,
                    shared,
                    &mut expansion,
                    visitor,
                    &mut candidates,
                    &mut child_scratch,
                    config,
                    gnode,
                    depth,
                );
                shared.pool.complete_one();
                if control == Control::Stop {
                    shared.stopped.store(true, Ordering::SeqCst);
                    shared.propose_world();
                } else if shared.states.load(Ordering::SeqCst)
                    >= shared.next_checkpoint_at.load(Ordering::SeqCst)
                {
                    shared.ckpt_due.store(true, Ordering::SeqCst);
                    shared.propose_world();
                }
            }
        }
    }
}

/// Process one claimed node: the sharded mirror of the sequential engine's
/// per-node body — same hook order, same budget-before-edge discipline,
/// same copy-on-write scratch-child reuse, same panic containment.
#[allow(clippy::too_many_arguments)]
fn process_node<P, E, V>(
    w: usize,
    protocol: &P,
    shared: &Shared<'_, P>,
    expansion: &mut E,
    visitor: &mut V,
    candidates: &mut Vec<Action>,
    child_scratch: &mut Option<Configuration<P>>,
    config: Configuration<P>,
    gnode: GNode,
    depth: u32,
) -> Control
where
    P: Protocol,
    E: Expansion<P>,
    V: ShardVisitor<P>,
{
    shared.states.fetch_add(1, Ordering::SeqCst);
    shared.deepest.fetch_max(depth as usize, Ordering::SeqCst);
    candidates.clear();
    expansion.candidates(protocol, &config, candidates);
    let witness = WitnessRef {
        arenas: &shared.arenas,
        node: gnode,
        action: None,
    };
    if visitor.enter(protocol, &config, &witness, candidates) == Control::Stop {
        return Control::Stop;
    }
    if candidates.is_empty() {
        shared.terminal.fetch_add(1, Ordering::SeqCst);
        return Control::Continue;
    }
    if depth as usize >= shared.budget.max_depth {
        shared.depth_truncated.store(true, Ordering::SeqCst);
        return Control::Continue;
    }
    let mut scratch_synced = false;
    for &action in candidates.iter() {
        let child = match child_scratch {
            Some(child) => {
                if !scratch_synced {
                    child.clone_state_from(&config);
                }
                child
            }
            None => child_scratch.insert(config.clone()),
        };
        scratch_synced = true;
        let stepped = match action {
            Action::Step(pid) => {
                match panic::catch_unwind(AssertUnwindSafe(|| {
                    child.step_quiet_undoable(protocol, pid)
                })) {
                    Ok(result) => result,
                    Err(payload) => Err(SimError::Panicked {
                        process: pid,
                        message: panic_message(payload),
                    }),
                }
            }
            Action::Crash(pid) => child.crash(pid).map(|undo| (None, undo)),
        };
        match stepped {
            Ok((decided, undo)) => {
                // Budget checks first, exactly as sequentially: a child
                // probed while a budget binds gets no edge hook, and only a
                // genuinely new one marks the search truncated.
                if shared.in_frontier.load(Ordering::SeqCst) >= shared.budget.max_frontier {
                    if !shared.dedup.contains(protocol, child) {
                        shared.budget_truncated.store(true, Ordering::SeqCst);
                    }
                    child.undo_step(undo);
                    continue;
                }
                match shared.dedup.insert(protocol, child) {
                    StripedInsert::BudgetNew => {
                        shared.budget_truncated.store(true, Ordering::SeqCst);
                        child.undo_step(undo);
                    }
                    StripedInsert::BudgetDuplicate => {
                        child.undo_step(undo);
                    }
                    StripedInsert::Duplicate => {
                        let witness = WitnessRef {
                            arenas: &shared.arenas,
                            node: gnode,
                            action: Some(action),
                        };
                        if visitor.edge(protocol, child, decided, false, &witness) == Control::Stop
                        {
                            return Control::Stop;
                        }
                        child.undo_step(undo);
                    }
                    StripedInsert::New => {
                        let child_gnode = shared.arenas.record(w, gnode, action, depth + 1);
                        let witness = WitnessRef {
                            arenas: &shared.arenas,
                            node: child_gnode,
                            action: None,
                        };
                        if visitor.edge(protocol, child, decided, true, &witness) == Control::Stop {
                            return Control::Stop;
                        }
                        shared.next[w].lock().expect("buffer poisoned").push((
                            child.clone(),
                            child_gnode,
                            depth + 1,
                        ));
                        let now = shared.in_frontier.fetch_add(1, Ordering::SeqCst) + 1;
                        shared.peak_frontier.fetch_max(now, Ordering::SeqCst);
                        scratch_synced = false;
                    }
                }
            }
            Err(error) => {
                if matches!(error, SimError::Panicked { .. }) {
                    // The scratch child may hold torn state: discard it.
                    *child_scratch = None;
                }
                let witness = WitnessRef {
                    arenas: &shared.arenas,
                    node: gnode,
                    action: Some(action),
                };
                match visitor.step_error(protocol, error, &witness) {
                    Control::Stop => return Control::Stop,
                    Control::Continue => {
                        shared.budget_truncated.store(true, Ordering::SeqCst);
                    }
                }
            }
        }
    }
    Control::Continue
}

/// Park at the barrier; worker 0 executes the world operation
/// single-threadedly between the two waits. Returns `true` when the run is
/// over and the worker should exit.
fn rendezvous<P: Protocol>(
    w: usize,
    shared: &Shared<'_, P>,
    ckpt: &mut Option<Checkpointing<'_>>,
) -> bool {
    shared.barrier.wait();
    if w == 0 {
        leader_step(shared, ckpt);
    }
    shared.barrier.wait();
    shared.done.load(Ordering::SeqCst)
}

/// The leader's single-threaded world operation, in priority order: stop >
/// deadline > checkpoint > wave swap. Conditions that lose the rendezvous
/// (e.g. a wave end pre-empted by a checkpoint) are still true afterwards
/// and simply re-trigger the next rendezvous.
fn leader_step<P: Protocol>(shared: &Shared<'_, P>, ckpt: &mut Option<Checkpointing<'_>>) {
    if shared.stopped.load(Ordering::SeqCst) {
        // A visitor aborted: return immediately, no final snapshot —
        // mirroring the sequential engine's early return.
        shared.done.store(true, Ordering::SeqCst);
        return release(shared);
    }
    if shared.deadline.is_raised() {
        let remaining = shared.pool.pending() + shared.next_len();
        if remaining > 0 {
            // The single place — and single thread — that marks the
            // truncation, so the flag is set exactly once per run.
            shared.deadline_truncated.store(true, Ordering::SeqCst);
            if let Some(ck) = ckpt.as_mut() {
                // Final resumable snapshot, verdict ignored (mirrors the
                // sequential deadline path).
                let image = shared.drain_image(true);
                let _ = (ck.sink)(&image);
            }
            shared.done.store(true, Ordering::SeqCst);
            return release(shared);
        }
        // Deadline hit with nothing pending: the search finished in time;
        // fall through to the wave logic, which will finalize cleanly.
    }
    if shared.ckpt_due.swap(false, Ordering::SeqCst) {
        if let Some(ck) = ckpt.as_mut() {
            let image = shared.drain_image(false);
            match (ck.sink)(&image) {
                Control::Continue => {
                    let states = shared.states.load(Ordering::SeqCst);
                    let mut next = shared.next_checkpoint_at.load(Ordering::SeqCst);
                    while next <= states {
                        next = next.saturating_add(shared.ckpt_interval);
                    }
                    shared.next_checkpoint_at.store(next, Ordering::SeqCst);
                }
                Control::Stop => {
                    shared.paused.store(true, Ordering::SeqCst);
                    shared.done.store(true, Ordering::SeqCst);
                    return release(shared);
                }
            }
        }
    }
    if shared.pool.pending() == 0 {
        // Wave end: swap every worker's next-wave buffer into its own
        // deque (steals rebalance from there). An empty swap means the
        // search is exhausted.
        let mut moved = 0usize;
        for (owner, buffer) in shared.next.iter().enumerate() {
            let items: Vec<_> = std::mem::take(&mut *buffer.lock().expect("buffer poisoned"));
            moved += items.len();
            for item in items {
                shared.pool.push(owner, item);
            }
        }
        if moved == 0 {
            shared.done.store(true, Ordering::SeqCst);
        }
    }
    release(shared)
}

/// Re-open the world (unless the run is over) — always called by the
/// leader before the releasing barrier wait.
fn release<P: Protocol>(shared: &Shared<'_, P>) {
    if !shared.done.load(Ordering::SeqCst) {
        shared.world.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::DedupSet;
    use crate::engine::{AllRunning, Engine, Lifo, NodeCtx, Visitor};
    use crate::search::VisitedSet;
    use crate::testing::TwoProcessSwapConsensus;
    use proptest::prelude::*;

    fn cfg(a: u64, b: u64) -> Configuration<TwoProcessSwapConsensus> {
        Configuration::initial(&TwoProcessSwapConsensus, &[a, b]).expect("valid inputs")
    }

    #[test]
    fn gnode_packing_round_trips() {
        for owner in [0, 1, 7, MAX_THREADS - 1] {
            for idx in [0usize, 1, 1234, (1 << IDX_BITS) - 1] {
                if owner == MAX_THREADS - 1 && idx == (1 << IDX_BITS) - 1 {
                    // The one forbidden combination: it would collide with
                    // the root sentinel, and `pack` asserts against it.
                    continue;
                }
                let g = GNode::pack(owner, idx);
                assert_eq!(g.owner(), owner);
                assert_eq!(g.idx(), idx);
                assert_ne!(g, GNode::ROOT);
            }
        }
    }

    #[test]
    fn striped_budget_outcomes_are_exact_at_the_boundary() {
        let p = &TwoProcessSwapConsensus;
        let striped = StripedDedup::new(DedupSet::exact(8), 4, 3);
        striped.insert_root(p, &cfg(0, 0));
        assert_eq!(striped.insert(p, &cfg(0, 1)), StripedInsert::New);
        assert_eq!(striped.insert(p, &cfg(0, 1)), StripedInsert::Duplicate);
        assert_eq!(striped.insert(p, &cfg(0, 2)), StripedInsert::New);
        // Budget full at exactly max_states = 3.
        assert_eq!(striped.insert(p, &cfg(0, 3)), StripedInsert::BudgetNew);
        assert_eq!(
            striped.insert(p, &cfg(0, 2)),
            StripedInsert::BudgetDuplicate
        );
        assert_eq!(striped.len(), 3);
        assert!(striped.contains(p, &cfg(0, 2)));
        assert!(!striped.contains(p, &cfg(0, 3)));
    }

    #[test]
    fn root_insert_bypasses_a_zero_budget() {
        let p = &TwoProcessSwapConsensus;
        let striped = StripedDedup::new(DedupSet::exact(2), 2, 0);
        striped.insert_root(p, &cfg(0, 0));
        assert_eq!(striped.len(), 1);
        assert!(striped.contains(p, &cfg(0, 0)));
        assert_eq!(striped.insert(p, &cfg(0, 1)), StripedInsert::BudgetNew);
    }

    #[test]
    fn forced_collisions_exercise_the_exact_fallback_in_every_stripe() {
        // Mask fingerprints down to two bits: with four stripes, stripe i
        // receives exactly the configurations whose masked key is i, and
        // every insert beyond the first per stripe must run the exact
        // (full-equality) fallback scan.
        let p = &TwoProcessSwapConsensus;
        let striped = StripedDedup::new(
            DedupSet::Exact(VisitedSet::with_fingerprint_mask(0b11)),
            4,
            usize::MAX,
        );
        let mut inserted = 0usize;
        for a in 0..10 {
            for b in 0..10 {
                assert_eq!(striped.insert(p, &cfg(a, b)), StripedInsert::New);
                inserted += 1;
            }
        }
        // Exactness survives the collisions: every configuration is stored
        // and duplicates are still recognized.
        assert_eq!(striped.len(), inserted);
        for a in 0..10 {
            assert_eq!(striped.insert(p, &cfg(a, a)), StripedInsert::Duplicate);
        }
        let per_stripe = striped.stripe_fallbacks();
        assert_eq!(per_stripe.len(), 4);
        for (i, &fallbacks) in per_stripe.iter().enumerate() {
            assert!(fallbacks > 0, "stripe {i} never hit the exact fallback");
        }
    }

    proptest! {
        /// The union of the stripes equals the sequential set, for random
        /// insert batches, random stripe counts, and concurrent inserters.
        #[test]
        fn striped_contents_match_sequential(
            pairs in proptest::collection::vec((0u64..6, 0u64..6), 1..48),
            stripes in 1usize..6,
            workers in 2usize..5,
        ) {
            let p = &TwoProcessSwapConsensus;
            let mut reference = DedupSet::exact(64);
            for &(a, b) in &pairs {
                reference.insert(p, &cfg(a, b));
            }
            let striped = StripedDedup::new(DedupSet::exact(64), stripes, usize::MAX);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let striped = &striped;
                    let pairs = &pairs;
                    scope.spawn(move || {
                        for &(a, b) in pairs.iter().skip(w).step_by(workers) {
                            striped.insert(p, &cfg(a, b));
                        }
                    });
                }
            });
            prop_assert_eq!(striped.len(), reference.len());
            for &(a, b) in &pairs {
                prop_assert!(striped.contains(p, &cfg(a, b)));
            }
            prop_assert!(!striped.contains(p, &cfg(9, 9)));
        }
    }

    /// A visitor that accepts everything — both sequentially and sharded —
    /// so runs compare raw search stats.
    struct Accept;

    impl Visitor<TwoProcessSwapConsensus> for Accept {
        fn enter(
            &mut self,
            _: &TwoProcessSwapConsensus,
            _: &Configuration<TwoProcessSwapConsensus>,
            _: &NodeCtx<'_>,
            _: &[Action],
        ) -> Control {
            Control::Continue
        }
    }

    impl ShardVisitor<TwoProcessSwapConsensus> for Accept {
        fn enter(
            &mut self,
            _: &TwoProcessSwapConsensus,
            _: &Configuration<TwoProcessSwapConsensus>,
            _: &WitnessRef<'_>,
            _: &[Action],
        ) -> Control {
            Control::Continue
        }
    }

    fn sequential_stats(budget: Budget) -> SearchStats {
        let mut dedup = DedupSet::exact(128);
        let mut arena = ScheduleArena::new();
        Engine::new(budget).run(
            &TwoProcessSwapConsensus,
            cfg(0, 1),
            &mut dedup,
            &mut arena,
            &mut AllRunning,
            &mut Lifo::new(),
            &mut Accept,
        )
    }

    fn sharded_stats(budget: Budget, threads: usize) -> SearchStats {
        let striped = StripedDedup::new(DedupSet::exact(128), 8, budget.max_states);
        let mut visitors: Vec<Accept> = (0..threads).map(|_| Accept).collect();
        run_sharded(
            &TwoProcessSwapConsensus,
            cfg(0, 1),
            &striped,
            &ShardOptions {
                threads,
                budget,
                deadline: None,
            },
            || AllRunning,
            &mut visitors,
            None,
        )
    }

    /// Everything but the order-dependent high-water mark.
    fn parity_view(s: SearchStats) -> (usize, usize, usize, bool, bool, bool, bool, bool) {
        (
            s.states,
            s.terminal_states,
            s.deepest,
            s.stopped,
            s.depth_truncated,
            s.budget_truncated,
            s.deadline_truncated,
            s.paused,
        )
    }

    #[test]
    fn sharded_complete_search_matches_sequential_stats() {
        let budget = Budget::new(16, 100_000);
        let seq = sequential_stats(budget);
        assert!(seq.complete(), "the two-process space is tiny");
        for threads in [2, 3, 4] {
            let shard = sharded_stats(budget, threads);
            assert_eq!(parity_view(shard), parity_view(seq), "threads = {threads}");
        }
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        let budget = Budget::new(16, 100_000);
        let first = sharded_stats(budget, 4);
        for _ in 0..2 {
            assert_eq!(parity_view(sharded_stats(budget, 4)), parity_view(first));
        }
    }

    #[test]
    fn exactly_max_states_stays_complete_in_sharded_mode() {
        let exact = sequential_stats(Budget::new(16, 100_000)).states;
        let seq = sequential_stats(Budget::new(16, exact));
        assert!(
            seq.complete(),
            "exactly-max spaces stay complete (PR 2 pin)"
        );
        let shard = sharded_stats(Budget::new(16, exact), 2);
        assert_eq!(parity_view(shard), parity_view(seq));
        let truncated = sharded_stats(Budget::new(16, exact - 1), 2);
        assert!(truncated.budget_truncated, "one fewer state must truncate");
    }

    #[test]
    fn zero_deadline_truncates_before_any_work() {
        let striped = StripedDedup::new(DedupSet::exact(16), 2, 100_000);
        let mut visitors = vec![Accept, Accept];
        let mut images: Vec<SearchImage> = Vec::new();
        let mut sink = |image: &SearchImage| {
            images.push(SearchImage {
                stats: image.stats,
                arena: image.arena.clone(),
                discovery: image.discovery.clone(),
                frontier: image.frontier.clone(),
            });
            Control::Continue
        };
        let stats = run_sharded(
            &TwoProcessSwapConsensus,
            cfg(0, 1),
            &striped,
            &ShardOptions {
                threads: 2,
                budget: Budget::new(16, 100_000),
                deadline: Some(Duration::ZERO),
            },
            || AllRunning,
            &mut visitors,
            Some(Checkpointing {
                interval: 1,
                sink: &mut sink,
            }),
        );
        assert_eq!(stats.states, 0, "no node may be claimed past the deadline");
        assert!(stats.deadline_truncated);
        assert!(!stats.paused);
        // The final forced snapshot is resumable: the whole search is still
        // pending, as exactly one frontier entry (the root).
        let last = images
            .last()
            .expect("deadline path forces a final snapshot");
        assert!(last.stats.deadline_truncated);
        assert_eq!(last.frontier.len(), 1);
        assert_eq!(last.frontier[0], ScheduleArena::ROOT);
    }
}
