//! Crash-safe snapshot files for interrupted searches.
//!
//! A snapshot persists a [`SearchImage`] (arena + discovery order + pending
//! frontier + stats) plus a [`RunMeta`] describing the run's parameters, so
//! a killed process can resume with full parity
//! ([`crate::engine::Engine::resume`]). The file format is deliberately
//! paranoid — a checkpoint only matters when something already went wrong:
//!
//! ```text
//! magic "SWCK" (4) | version u32 | payload_len u64 | fxhash64(payload) | payload
//! ```
//!
//! * **versioned** — a snapshot written by a different format version is
//!   rejected with [`SnapshotError::VersionMismatch`], never misdecoded;
//! * **checksummed** — any flipped or truncated payload byte is rejected
//!   with [`SnapshotError::ChecksumMismatch`] before decoding begins;
//! * **atomic** — [`write_snapshot`] writes to a temporary sibling and
//!   renames over the destination, so a `SIGKILL` mid-write leaves either
//!   the old complete snapshot or the new complete snapshot, never a torn
//!   file;
//! * **validated** — the decoded arena re-checks its parent-pointer and
//!   depth invariants ([`SnapshotError::Corrupt`]), so no later accessor
//!   can panic or loop on hostile input.
//!
//! Every failure mode is a typed [`SnapshotError`] — corrupted checkpoints
//! are reported, never panicked on.
//!
//! Sharded searches ([`crate::shard`]) drain their per-worker arenas and
//! wave buffers into this same single-arena [`SearchImage`] shape at
//! checkpoint time, so snapshots carry no trace of the thread count that
//! wrote them: a file written by a sharded run resumes sequentially (and
//! vice versa) with no format change or version bump.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use serde::bin::{Decode, DecodeError, Encode, Reader};

use crate::engine::{SearchImage, SearchStats};
use crate::search::{NodeId, ScheduleArena};

/// File magic: "SWapcons ChecKpoint".
pub const MAGIC: [u8; 4] = *b"SWCK";

/// Current snapshot format version. Bump on any payload layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Typed failure of snapshot IO/decoding — the byte/file layer.
/// (Semantic resume failures are [`crate::engine::ResumeError`].)
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem error (message of the underlying `std::io::Error`).
    Io(String),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file's format version differs from [`FORMAT_VERSION`].
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The payload checksum does not match — bit rot, truncation, or a torn
    /// write by something other than [`write_snapshot`].
    ChecksumMismatch,
    /// The payload passed the checksum but failed structural decoding or
    /// arena validation.
    Corrupt(String),
    /// The snapshot's [`RunMeta`] does not match the resuming run's
    /// parameters (different protocol, inputs, budgets, or reduction mode).
    MetaMismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot format version {found}, expected {expected}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot payload: {m}"),
            SnapshotError::MetaMismatch(m) => write!(f, "snapshot run mismatch: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Corrupt(e.to_string())
    }
}

/// Parameters identifying the run a snapshot belongs to. Resuming checks
/// the stored meta against the resuming run's and refuses on mismatch —
/// resuming a PairsKSet search into an Algorithm 1 checker would otherwise
/// silently produce garbage verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// [`crate::Protocol::name`] of the checked protocol.
    pub protocol_name: String,
    /// The run's input vector.
    pub inputs: Vec<u64>,
    /// Depth budget.
    pub max_depth: u64,
    /// State budget.
    pub max_states: u64,
    /// Whether symmetry reduction was on.
    pub symmetry_reduction: bool,
    /// Solo-termination step budget of the checker.
    pub solo_budget: u64,
    /// Crash-injection failure budget (`f`).
    pub max_failures: u64,
}

impl RunMeta {
    /// Check that `self` (from the file) matches `current` (the resuming
    /// run), field by field, with a diagnostic naming the first mismatch.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MetaMismatch`] on the first differing field.
    pub fn ensure_matches(&self, current: &RunMeta) -> Result<(), SnapshotError> {
        macro_rules! check {
            ($field:ident) => {
                if self.$field != current.$field {
                    return Err(SnapshotError::MetaMismatch(format!(
                        "{}: snapshot has {:?}, resuming run has {:?}",
                        stringify!($field),
                        self.$field,
                        current.$field
                    )));
                }
            };
        }
        check!(protocol_name);
        check!(inputs);
        check!(max_depth);
        check!(max_states);
        check!(symmetry_reduction);
        check!(solo_budget);
        check!(max_failures);
        Ok(())
    }
}

impl Encode for RunMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.protocol_name.encode(out);
        self.inputs.encode(out);
        self.max_depth.encode(out);
        self.max_states.encode(out);
        self.symmetry_reduction.encode(out);
        self.solo_budget.encode(out);
        self.max_failures.encode(out);
    }
}

impl Decode for RunMeta {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RunMeta {
            protocol_name: String::decode(r)?,
            inputs: Vec::decode(r)?,
            max_depth: u64::decode(r)?,
            max_states: u64::decode(r)?,
            symmetry_reduction: bool::decode(r)?,
            solo_budget: u64::decode(r)?,
            max_failures: u64::decode(r)?,
        })
    }
}

fn encode_stats(stats: &SearchStats, out: &mut Vec<u8>) {
    (stats.states as u64).encode(out);
    (stats.terminal_states as u64).encode(out);
    (stats.deepest as u64).encode(out);
    (stats.peak_frontier as u64).encode(out);
    stats.stopped.encode(out);
    stats.depth_truncated.encode(out);
    stats.budget_truncated.encode(out);
    stats.deadline_truncated.encode(out);
    stats.paused.encode(out);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<SearchStats, DecodeError> {
    let as_usize = |v: u64| usize::try_from(v).map_err(|_| DecodeError::Invalid);
    Ok(SearchStats {
        states: as_usize(u64::decode(r)?)?,
        terminal_states: as_usize(u64::decode(r)?)?,
        deepest: as_usize(u64::decode(r)?)?,
        peak_frontier: as_usize(u64::decode(r)?)?,
        stopped: bool::decode(r)?,
        depth_truncated: bool::decode(r)?,
        budget_truncated: bool::decode(r)?,
        deadline_truncated: bool::decode(r)?,
        paused: bool::decode(r)?,
    })
}

fn encode_nodes(nodes: &[NodeId], out: &mut Vec<u8>) {
    nodes.len().encode(out);
    for n in nodes {
        n.to_raw().encode(out);
    }
}

fn decode_nodes(r: &mut Reader<'_>) -> Result<Vec<NodeId>, DecodeError> {
    let raw: Vec<u32> = Vec::decode(r)?;
    Ok(raw.into_iter().map(NodeId::from_raw).collect())
}

fn encode_image(image: &SearchImage, out: &mut Vec<u8>) {
    encode_stats(&image.stats, out);
    let raw = image.arena.raw_nodes();
    raw.len().encode(out);
    for &(parent, tagged, depth) in raw {
        parent.to_raw().encode(out);
        tagged.encode(out);
        depth.encode(out);
    }
    encode_nodes(&image.discovery, out);
    encode_nodes(&image.frontier, out);
}

fn decode_image(r: &mut Reader<'_>) -> Result<SearchImage, SnapshotError> {
    let stats = decode_stats(r)?;
    let len = usize::decode(r)?;
    if len
        .checked_mul(12)
        .is_none_or(|bytes| bytes > r.remaining())
    {
        return Err(SnapshotError::Corrupt(
            "arena length overflows input".into(),
        ));
    }
    let mut raw = Vec::with_capacity(len);
    for _ in 0..len {
        let parent = NodeId::from_raw(u32::decode(r)?);
        let tagged = u32::decode(r)?;
        let depth = u32::decode(r)?;
        raw.push((parent, tagged, depth));
    }
    let arena = ScheduleArena::from_raw_nodes(raw).map_err(SnapshotError::Corrupt)?;
    let discovery = decode_nodes(r)?;
    let frontier = decode_nodes(r)?;
    Ok(SearchImage {
        stats,
        arena,
        discovery,
        frontier,
    })
}

/// Serialize `(meta, image)` to the snapshot byte format (header included).
pub fn to_snapshot_bytes(meta: &RunMeta, image: &SearchImage) -> Vec<u8> {
    let mut payload = Vec::new();
    meta.encode(&mut payload);
    encode_image(image, &mut payload);
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fxhash::hash64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse snapshot bytes, validating magic, version, length, and checksum
/// before any structural decoding.
///
/// # Errors
///
/// See [`SnapshotError`]; every malformed input is a typed error, never a
/// panic.
pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<(RunMeta, SearchImage), SnapshotError> {
    if bytes.len() < 24 {
        return Err(SnapshotError::BadMagic);
    }
    if bytes[0..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload = &bytes[24..];
    if payload_len != payload.len() as u64 {
        return Err(SnapshotError::ChecksumMismatch);
    }
    if fxhash::hash64(payload) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut r = Reader::new(payload);
    let meta = RunMeta::decode(&mut r)?;
    let image = decode_image(&mut r)?;
    if r.remaining() != 0 {
        return Err(SnapshotError::Corrupt("trailing payload bytes".into()));
    }
    Ok((meta, image))
}

/// Write a snapshot file **atomically**: the bytes go to a `.tmp` sibling
/// first and are renamed over `path`, so a kill at any instant leaves
/// either the previous complete snapshot or the new one.
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failure.
pub fn write_snapshot(
    path: &Path,
    meta: &RunMeta,
    image: &SearchImage,
) -> Result<(), SnapshotError> {
    let bytes = to_snapshot_bytes(meta, image);
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and validate a snapshot file.
///
/// # Errors
///
/// See [`SnapshotError`].
pub fn read_snapshot(path: &Path) -> Result<(RunMeta, SearchImage), SnapshotError> {
    let bytes = fs::read(path)?;
    from_snapshot_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Action, ProcessId};

    fn sample_meta() -> RunMeta {
        RunMeta {
            protocol_name: "pairs-kset(n=4,k=2)".into(),
            inputs: vec![3, 1, 4, 1],
            max_depth: 64,
            max_states: 100_000,
            symmetry_reduction: true,
            solo_budget: 32,
            max_failures: 2,
        }
    }

    fn sample_image() -> SearchImage {
        let mut arena = ScheduleArena::new();
        let a = arena.child(ScheduleArena::ROOT, ProcessId(0));
        let b = arena.child_action(a, Action::Crash(ProcessId(1)));
        let mut stats = SearchStats {
            states: 2,
            terminal_states: 0,
            deepest: 2,
            peak_frontier: 3,
            stopped: false,
            depth_truncated: false,
            budget_truncated: false,
            deadline_truncated: true,
            paused: false,
        };
        stats.deepest = 2;
        SearchImage {
            stats,
            arena,
            discovery: vec![ScheduleArena::ROOT, a, b],
            frontier: vec![b],
        }
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let bytes = to_snapshot_bytes(&sample_meta(), &sample_image());
        let (meta, image) = from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(meta, sample_meta());
        let original = sample_image();
        assert_eq!(image.stats, original.stats);
        assert_eq!(image.discovery, original.discovery);
        assert_eq!(image.frontier, original.frontier);
        assert_eq!(image.arena.raw_nodes(), original.arena.raw_nodes());
        assert_eq!(
            image.arena.actions(NodeId::from_raw(1)),
            vec![Action::Step(ProcessId(0)), Action::Crash(ProcessId(1)),]
        );
    }

    #[test]
    fn every_corrupted_payload_byte_is_caught() {
        let bytes = to_snapshot_bytes(&sample_meta(), &sample_image());
        for i in 24..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert_eq!(
                from_snapshot_bytes(&bad).unwrap_err(),
                SnapshotError::ChecksumMismatch,
                "flipped payload byte {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn header_corruption_is_typed() {
        let bytes = to_snapshot_bytes(&sample_meta(), &sample_image());
        // Magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            from_snapshot_bytes(&bad).unwrap_err(),
            SnapshotError::BadMagic
        );
        // Version.
        let mut bad = bytes.clone();
        bad[4] = FORMAT_VERSION as u8 + 1;
        assert_eq!(
            from_snapshot_bytes(&bad).unwrap_err(),
            SnapshotError::VersionMismatch {
                found: FORMAT_VERSION + 1,
                expected: FORMAT_VERSION
            }
        );
        // Truncation (any cut point).
        for cut in 0..bytes.len() {
            assert!(
                from_snapshot_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        // Trailing garbage changes the length check.
        let mut bad = bytes.clone();
        bad.push(0);
        assert_eq!(
            from_snapshot_bytes(&bad).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
    }

    #[test]
    fn checksum_passes_but_bad_arena_is_corrupt() {
        // Build a payload whose arena violates the parent-pointer invariant
        // and wrap it in a *valid* header: decoding must reject it with
        // `Corrupt`, not panic.
        let mut image = sample_image();
        image.arena = ScheduleArena::new(); // empty, but discovery points at nodes 0/1
        let mut payload = Vec::new();
        sample_meta().encode(&mut payload);
        // stats
        encode_stats(&image.stats, &mut payload);
        // arena with a forward parent pointer
        1usize.encode(&mut payload);
        NodeId::from_raw(5).to_raw().encode(&mut payload);
        0u32.encode(&mut payload);
        1u32.encode(&mut payload);
        encode_nodes(&image.discovery, &mut payload);
        encode_nodes(&image.frontier, &mut payload);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fxhash::hash64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match from_snapshot_bytes(&bytes).unwrap_err() {
            SnapshotError::Corrupt(m) => assert!(m.contains("parent"), "{m}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn meta_mismatch_names_the_field() {
        let a = sample_meta();
        let mut b = sample_meta();
        b.max_failures = 0;
        let err = a.ensure_matches(&b).unwrap_err();
        match err {
            SnapshotError::MetaMismatch(m) => assert!(m.contains("max_failures"), "{m}"),
            other => panic!("expected MetaMismatch, got {other:?}"),
        }
        assert!(a.ensure_matches(&sample_meta()).is_ok());
    }

    #[test]
    fn file_round_trip_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("swck-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.swck");
        write_snapshot(&path, &sample_meta(), &sample_image()).unwrap();
        let (meta, image) = read_snapshot(&path).unwrap();
        assert_eq!(meta, sample_meta());
        assert_eq!(image.stats, sample_image().stats);
        // Overwrite goes through the same atomic path.
        write_snapshot(&path, &sample_meta(), &sample_image()).unwrap();
        assert!(read_snapshot(&path).is_ok());
        // A missing file is a typed Io error.
        assert!(matches!(
            read_snapshot(&dir.join("absent.swck")).unwrap_err(),
            SnapshotError::Io(_)
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
