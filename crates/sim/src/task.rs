//! Task specifications and output predicates.
//!
//! The paper's problems are the m-valued k-set agreement family (Section 2):
//! consensus is 1-set agreement, binary consensus is 2-valued consensus.
//! [`KSetTask`] carries the parameters and implements the two correctness
//! predicates every algorithm must satisfy:
//!
//! * **k-Agreement** — no more than `k` values are decided;
//! * **Validity** — every decided value was some process's input.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Parameters of an `m`-valued `k`-set agreement task for `n` processes.
///
/// # Example
///
/// ```
/// use swapcons_sim::KSetTask;
///
/// let task = KSetTask::consensus(4); // 4-process binary consensus
/// assert_eq!(task.k, 1);
/// assert!(task.check(&[0, 1, 0, 1], &[Some(1), Some(1), None, Some(1)]).is_ok());
/// assert!(task.check(&[0, 1, 0, 1], &[Some(0), Some(1), None, None]).is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KSetTask {
    /// Number of processes.
    pub n: usize,
    /// Maximum number of distinct decided values.
    pub k: usize,
    /// Input domain size: inputs come from `{0, …, m-1}`.
    pub m: u64,
}

impl KSetTask {
    /// `n`-process `m`-valued `k`-set agreement.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`, which do not define a task.
    pub fn new(n: usize, k: usize, m: u64) -> Self {
        assert!(n > 0, "a task needs at least one process");
        assert!(k > 0, "k-set agreement requires k >= 1");
        KSetTask { n, k, m }
    }

    /// `n`-process binary consensus (`k = 1`, `m = 2`).
    pub fn consensus(n: usize) -> Self {
        KSetTask::new(n, 1, 2)
    }

    /// The task is trivial when `m <= k` (everyone can decide their input) —
    /// Section 2 notes m-valued k-set agreement is trivial if `m <= k`.
    pub fn is_trivial(&self) -> bool {
        self.m <= self.k as u64
    }

    /// Validate an input assignment: one input per process, each in
    /// `{0, …, m-1}`.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskViolation`] describing the first offending input.
    pub fn check_inputs(&self, inputs: &[u64]) -> Result<(), TaskViolation> {
        if inputs.len() != self.n {
            return Err(TaskViolation::WrongInputCount {
                expected: self.n,
                got: inputs.len(),
            });
        }
        for (i, &v) in inputs.iter().enumerate() {
            if v >= self.m {
                return Err(TaskViolation::InputOutOfRange {
                    process: i,
                    input: v,
                    m: self.m,
                });
            }
        }
        Ok(())
    }

    /// Check k-agreement over the decided values (`None` = undecided).
    ///
    /// # Errors
    ///
    /// Returns [`TaskViolation::Agreement`] listing the decided set when more
    /// than `k` distinct values were decided.
    pub fn check_agreement(&self, decisions: &[Option<u64>]) -> Result<(), TaskViolation> {
        let decided: HashSet<u64> = decisions.iter().flatten().copied().collect();
        if decided.len() > self.k {
            let mut values: Vec<u64> = decided.into_iter().collect();
            values.sort_unstable();
            return Err(TaskViolation::Agreement {
                k: self.k,
                decided: values,
            });
        }
        Ok(())
    }

    /// Check validity: every decided value is some process's input.
    ///
    /// # Errors
    ///
    /// Returns [`TaskViolation::Validity`] naming the first decided value
    /// that is nobody's input.
    pub fn check_validity(
        &self,
        inputs: &[u64],
        decisions: &[Option<u64>],
    ) -> Result<(), TaskViolation> {
        let input_set: HashSet<u64> = inputs.iter().copied().collect();
        for (i, d) in decisions.iter().enumerate() {
            if let Some(v) = d {
                if !input_set.contains(v) {
                    return Err(TaskViolation::Validity {
                        process: i,
                        decided: *v,
                    });
                }
            }
        }
        Ok(())
    }

    /// Check both safety predicates at once.
    ///
    /// # Errors
    ///
    /// Returns the first violated predicate.
    pub fn check(&self, inputs: &[u64], decisions: &[Option<u64>]) -> Result<(), TaskViolation> {
        self.check_decisions(inputs, decisions.iter().copied())
    }

    /// [`KSetTask::check`] over an iterator of decisions — the hot-path form
    /// used by the model checker on every visited configuration. Allocates
    /// nothing on the success path: distinct decided values are tracked in
    /// an inline buffer (spilling to a heap set only past 16 distinct
    /// values) and validity is a linear scan of `inputs`.
    ///
    /// # Errors
    ///
    /// Returns the first violated predicate, like [`KSetTask::check`]
    /// (agreement before validity).
    pub fn check_decisions<I>(&self, inputs: &[u64], decisions: I) -> Result<(), TaskViolation>
    where
        I: Iterator<Item = Option<u64>> + Clone,
    {
        const INLINE: usize = 16;
        let mut inline = [0u64; INLINE];
        let mut count = 0usize;
        let mut spill: Option<HashSet<u64>> = None;
        for v in decisions.clone().flatten() {
            match &mut spill {
                Some(set) => {
                    set.insert(v);
                }
                None if inline[..count].contains(&v) => {}
                None if count < INLINE => {
                    inline[count] = v;
                    count += 1;
                }
                None => {
                    let mut set: HashSet<u64> = inline.iter().copied().collect();
                    set.insert(v);
                    spill = Some(set);
                }
            }
        }
        let distinct = spill.as_ref().map_or(count, |s| s.len());
        if distinct > self.k {
            let mut values: Vec<u64> = match spill {
                Some(set) => set.into_iter().collect(),
                None => inline[..count].to_vec(),
            };
            values.sort_unstable();
            return Err(TaskViolation::Agreement {
                k: self.k,
                decided: values,
            });
        }
        for (i, d) in decisions.enumerate() {
            if let Some(v) = d {
                if !inputs.contains(&v) {
                    return Err(TaskViolation::Validity {
                        process: i,
                        decided: v,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for KSetTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-process {}-valued {}-set agreement",
            self.n, self.m, self.k
        )
    }
}

/// A violated task predicate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskViolation {
    /// The input vector length does not match `n`.
    WrongInputCount {
        /// Expected number of inputs (`n`).
        expected: usize,
        /// Provided number of inputs.
        got: usize,
    },
    /// An input lies outside `{0, …, m-1}`.
    InputOutOfRange {
        /// Offending process index.
        process: usize,
        /// Offending input.
        input: u64,
        /// Domain size.
        m: u64,
    },
    /// More than `k` distinct values decided.
    Agreement {
        /// The task's `k`.
        k: usize,
        /// The decided values, sorted.
        decided: Vec<u64>,
    },
    /// A process decided a value that was nobody's input.
    Validity {
        /// Offending process index.
        process: usize,
        /// The invalid decision.
        decided: u64,
    },
}

impl fmt::Display for TaskViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskViolation::WrongInputCount { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            TaskViolation::InputOutOfRange { process, input, m } => {
                write!(f, "process {process} has input {input} outside {{0..{m}}}")
            }
            TaskViolation::Agreement { k, decided } => {
                write!(
                    f,
                    "{} distinct values decided, exceeding k = {k}: {decided:?}",
                    decided.len()
                )
            }
            TaskViolation::Validity { process, decided } => {
                write!(
                    f,
                    "process {process} decided {decided}, which is nobody's input"
                )
            }
        }
    }
}

impl std::error::Error for TaskViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_shorthand() {
        let t = KSetTask::consensus(5);
        assert_eq!((t.n, t.k, t.m), (5, 1, 2));
        assert!(!t.is_trivial());
        assert_eq!(t.to_string(), "5-process 2-valued 1-set agreement");
    }

    #[test]
    fn trivial_when_m_le_k() {
        assert!(KSetTask::new(5, 3, 3).is_trivial());
        assert!(KSetTask::new(5, 3, 2).is_trivial());
        assert!(!KSetTask::new(5, 3, 4).is_trivial());
    }

    #[test]
    #[should_panic(expected = "k-set agreement requires k >= 1")]
    fn zero_k_rejected() {
        let _ = KSetTask::new(3, 0, 2);
    }

    #[test]
    fn input_validation() {
        let t = KSetTask::new(3, 1, 2);
        assert!(t.check_inputs(&[0, 1, 1]).is_ok());
        assert!(matches!(
            t.check_inputs(&[0, 1]),
            Err(TaskViolation::WrongInputCount {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            t.check_inputs(&[0, 1, 2]),
            Err(TaskViolation::InputOutOfRange {
                process: 2,
                input: 2,
                m: 2
            })
        ));
    }

    #[test]
    fn agreement_counts_distinct_values() {
        let t = KSetTask::new(4, 2, 3);
        // Two distinct values decided: fine for k = 2.
        assert!(t
            .check_agreement(&[Some(0), Some(1), Some(0), None])
            .is_ok());
        // Three distinct: violation.
        let err = t
            .check_agreement(&[Some(0), Some(1), Some(2), None])
            .unwrap_err();
        assert_eq!(
            err,
            TaskViolation::Agreement {
                k: 2,
                decided: vec![0, 1, 2]
            }
        );
    }

    #[test]
    fn validity_flags_foreign_values() {
        let t = KSetTask::new(3, 1, 4);
        let err = t
            .check_validity(&[0, 0, 1], &[Some(3), None, None])
            .unwrap_err();
        assert_eq!(
            err,
            TaskViolation::Validity {
                process: 0,
                decided: 3
            }
        );
        assert!(t
            .check_validity(&[0, 0, 1], &[Some(1), Some(0), None])
            .is_ok());
    }

    #[test]
    fn undecided_processes_do_not_violate() {
        let t = KSetTask::consensus(3);
        assert!(t.check(&[0, 1, 0], &[None, None, None]).is_ok());
    }

    #[test]
    fn check_decisions_matches_check() {
        let t = KSetTask::new(4, 2, 3);
        for decisions in [
            vec![Some(0), Some(1), Some(0), None],
            vec![Some(0), Some(1), Some(2), None],
            vec![None, None, None, None],
            vec![Some(2), None, None, None],
        ] {
            assert_eq!(
                t.check(&[0, 1, 2, 0], &decisions),
                t.check_decisions(&[0, 1, 2, 0], decisions.iter().copied()),
                "{decisions:?}"
            );
        }
        // Validity violation, same error as the slice path.
        let decisions = [Some(9u64), None, None, None];
        assert_eq!(
            t.check_decisions(&[0, 1, 2, 0], decisions.iter().copied()),
            Err(TaskViolation::Validity {
                process: 0,
                decided: 9
            })
        );
    }

    #[test]
    fn check_decisions_spills_past_inline_capacity() {
        // More than 16 distinct decided values forces the heap fallback of
        // the inline distinct-value buffer; the verdict must stay exact.
        let t = KSetTask::new(20, 18, 32);
        let inputs: Vec<u64> = (0..20).collect();
        let ok: Vec<Option<u64>> = (0..18).map(Some).chain([None, None]).collect();
        assert!(t.check_decisions(&inputs, ok.iter().copied()).is_ok());
        let bad: Vec<Option<u64>> = (0..19).map(Some).chain([None]).collect();
        let err = t.check_decisions(&inputs, bad.iter().copied()).unwrap_err();
        match err {
            TaskViolation::Agreement { k, decided } => {
                assert_eq!(k, 18);
                assert_eq!(decided, (0..19).collect::<Vec<u64>>(), "sorted, complete");
            }
            other => panic!("expected agreement violation, got {other:?}"),
        }
    }

    #[test]
    fn violation_display() {
        let v = TaskViolation::Agreement {
            k: 1,
            decided: vec![0, 1],
        };
        assert!(v.to_string().contains("exceeding k = 1"));
    }
}
