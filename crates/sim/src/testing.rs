//! Small reference protocols used by the simulator's own tests, doctests,
//! and the model checker's self-tests.
//!
//! [`TwoProcessSwapConsensus`] is a *paper algorithm*: Section 1 describes
//! the simple wait-free 2-process consensus algorithm from a single swap
//! object ("The swap object initially contains a special value ⊥ … Both
//! processes swap their input value into the object. The process that
//! receives the response ⊥ decides its input value and the other process
//! decides the value it obtained"). It is re-exported by `swapcons-core` as
//! the building block of the pairs k-set agreement construction.
//!
//! [`SelfishConsensus`] is deliberately **incorrect** (each process decides
//! its own input) — it exists so tests can confirm the model checker
//! actually catches agreement violations.

use swapcons_objects::{HistorylessOp, ObjectOp, ObjectSchema, Response};

use crate::canon::{Renaming, Symmetry};
use crate::ids::{ObjectId, ProcessId};
use crate::protocol::{Protocol, SimValue, Transition};
use crate::task::KSetTask;

/// Value stored in the 2-process consensus swap object: `⊥` or an input.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TwoProcConsensusValue {
    /// The initial value `⊥`, which cannot be any process's input.
    Bot,
    /// An input value swapped in by a process.
    Input(u64),
}

impl SimValue for TwoProcConsensusValue {}

/// The paper's wait-free 2-process consensus algorithm from one swap object.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwoProcessSwapConsensus;

/// State of a process in [`TwoProcessSwapConsensus`]: it has not yet swapped.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TwoProcState {
    /// The process's input.
    pub input: u64,
}

impl Protocol for TwoProcessSwapConsensus {
    type State = TwoProcState;
    type Value = TwoProcConsensusValue;

    fn name(&self) -> String {
        "two-process consensus from one swap object".into()
    }

    fn task(&self) -> KSetTask {
        // 2 processes, consensus, inputs in {0,…,15} (any m works; the
        // algorithm is input-oblivious).
        KSetTask::new(2, 1, 16)
    }

    fn num_objects(&self) -> usize {
        1
    }

    fn schema(&self, _obj: ObjectId) -> ObjectSchema {
        ObjectSchema::swap()
    }

    fn initial_value(&self, _obj: ObjectId) -> TwoProcConsensusValue {
        TwoProcConsensusValue::Bot
    }

    fn initial_state(&self, _pid: ProcessId, input: u64) -> TwoProcState {
        TwoProcState { input }
    }

    fn poised(&self, state: &TwoProcState) -> (ObjectId, ObjectOp<TwoProcConsensusValue>) {
        (
            ObjectId(0),
            HistorylessOp::Swap(TwoProcConsensusValue::Input(state.input)).into(),
        )
    }

    fn observe(
        &self,
        state: TwoProcState,
        response: Response<TwoProcConsensusValue>,
    ) -> Transition<TwoProcState> {
        match response.expect_value("swap always returns the previous value") {
            TwoProcConsensusValue::Bot => Transition::Decide(state.input),
            TwoProcConsensusValue::Input(v) => Transition::Decide(v),
        }
    }

    // Fully symmetric: the algorithm never inspects a process id, and values
    // are only moved, never compared against constants (⊥ is not a value).
    fn symmetry(&self) -> Symmetry {
        Symmetry::full_process(2).with_interchangeable_values()
    }

    fn rename_state(&self, state: &TwoProcState, renaming: &Renaming) -> TwoProcState {
        TwoProcState {
            input: renaming.value(state.input),
        }
    }

    fn rename_value(
        &self,
        _obj: ObjectId,
        value: &TwoProcConsensusValue,
        renaming: &Renaming,
    ) -> TwoProcConsensusValue {
        match value {
            TwoProcConsensusValue::Bot => TwoProcConsensusValue::Bot,
            TwoProcConsensusValue::Input(v) => TwoProcConsensusValue::Input(renaming.value(*v)),
        }
    }
}

/// A deliberately broken "consensus" protocol: each process reads a shared
/// register once and then decides **its own input**. Violates agreement
/// whenever two inputs differ. Used to test violation detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelfishConsensus {
    /// Number of processes.
    pub n: usize,
}

/// State of a process in [`SelfishConsensus`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SelfishState {
    /// The process's input.
    pub input: u64,
}

impl Protocol for SelfishConsensus {
    type State = SelfishState;
    type Value = u64;

    fn name(&self) -> String {
        format!("selfish (broken) consensus, n={}", self.n)
    }

    fn task(&self) -> KSetTask {
        KSetTask::consensus(self.n)
    }

    fn num_objects(&self) -> usize {
        1
    }

    fn schema(&self, _obj: ObjectId) -> ObjectSchema {
        ObjectSchema::register()
    }

    fn initial_value(&self, _obj: ObjectId) -> u64 {
        0
    }

    fn initial_state(&self, _pid: ProcessId, input: u64) -> SelfishState {
        SelfishState { input }
    }

    fn poised(&self, _state: &SelfishState) -> (ObjectId, ObjectOp<u64>) {
        (ObjectId(0), ObjectOp::read())
    }

    fn observe(&self, state: SelfishState, _response: Response<u64>) -> Transition<SelfishState> {
        Transition::Decide(state.input)
    }

    // Even a broken protocol can be symmetric: every process does the same
    // (wrong) thing. The shared register holds the constant 0 — not an input
    // value — so the default identity `rename_value` is correct.
    fn symmetry(&self) -> Symmetry {
        Symmetry::full_process(self.n).with_interchangeable_values()
    }

    fn rename_state(&self, state: &SelfishState, renaming: &Renaming) -> SelfishState {
        SelfishState {
            input: renaming.value(state.input),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::runner;

    #[test]
    fn two_process_consensus_all_interleavings() {
        // Only two schedules matter (p0 first or p1 first); check both for
        // all distinct input pairs.
        for (a, b) in [(0u64, 1u64), (3, 9), (5, 5)] {
            for first in [0usize, 1] {
                let second = 1 - first;
                let mut c = Configuration::initial(&TwoProcessSwapConsensus, &[a, b]).unwrap();
                c.step(&TwoProcessSwapConsensus, ProcessId(first)).unwrap();
                c.step(&TwoProcessSwapConsensus, ProcessId(second)).unwrap();
                let inputs = [a, b];
                let winner = inputs[first];
                assert_eq!(c.decision(ProcessId(first)), Some(winner));
                assert_eq!(c.decision(ProcessId(second)), Some(winner));
            }
        }
    }

    #[test]
    fn two_process_consensus_is_wait_free_two_steps() {
        // Wait-freedom with a concrete bound: each process decides in
        // exactly 1 own step regardless of schedule.
        let mut c = Configuration::initial(&TwoProcessSwapConsensus, &[2, 7]).unwrap();
        let out = runner::run(
            &TwoProcessSwapConsensus,
            &mut c,
            &mut crate::scheduler::RoundRobin::new(),
            5,
        )
        .unwrap();
        assert_eq!(out.steps, 2);
        assert!(out.all_decided);
    }

    #[test]
    fn selfish_consensus_violates_agreement() {
        let p = SelfishConsensus { n: 2 };
        let mut c = Configuration::initial(&p, &[0, 1]).unwrap();
        c.step(&p, ProcessId(0)).unwrap();
        c.step(&p, ProcessId(1)).unwrap();
        assert_eq!(c.decided_values().len(), 2, "two distinct values decided");
        assert!(p.task().check_agreement(&c.decisions()).is_err());
    }
}
