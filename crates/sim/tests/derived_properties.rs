//! Property-based tests for the derived-object composition layer: on
//! random scripts and random schedules, the flattened Aspnes one-bit swap
//! must be indistinguishable from an atomic one-bit swap object.

use proptest::prelude::*;
use swapcons_objects::ObjectOp;
use swapcons_sim::derived::{swap_outcome_profiles, SwapScripts};
use swapcons_sim::scheduler::{Fixed, SeededRandom};
use swapcons_sim::{runner, Configuration, LayeredProtocol, ProcessId};

/// A random script op: `0 → swap(0)`, `1 → swap(1)`, `2 → read`.
fn decode_script(codes: &[u8]) -> Vec<ObjectOp<u64>> {
    codes
        .iter()
        .map(|c| match c {
            0 => ObjectOp::swap(0),
            1 => ObjectOp::swap(1),
            _ => ObjectOp::read(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Running the derived swap under a random schedule yields a response
    /// sequence an atomic swap object admits under *some* schedule of the
    /// same scripts (and one that linearizes as a swap chain).
    #[test]
    fn derived_and_atomic_swap_agree_on_random_schedules(
        init in 0u64..2,
        codes_a in proptest::collection::vec(0u8..3, 1..4),
        codes_b in proptest::collection::vec(0u8..3, 1..4),
        seed in 0u64..10_000,
    ) {
        let scripts = vec![decode_script(&codes_a), decode_script(&codes_b)];
        let native = SwapScripts::new(init, scripts.clone());
        let derived =
            LayeredProtocol::derive_swaps(SwapScripts::new(init, scripts), 8);
        let mut config = Configuration::initial(&derived, &[0, 0]).unwrap();
        let out = runner::run(&derived, &mut config, &mut SeededRandom::new(seed), 200).unwrap();
        prop_assert!(out.all_decided);
        let profile: Vec<u64> = (0..2)
            .map(|p| config.decision(ProcessId(p)).unwrap())
            .collect();
        // The decisions encode each process's high-level response sequence;
        // they must linearize as a swap chain…
        prop_assert!(
            native.profile_chain_consistent(&profile),
            "profile {:?} does not linearize", profile
        );
        // …and be reachable on the atomic object (program order included).
        prop_assert!(
            swap_outcome_profiles(&native, 1 << 16).contains(&profile),
            "profile {:?} is not an atomic-swap outcome", profile
        );
    }

    /// Replaying the schedule a random run took reproduces the identical
    /// base-step history — the layered protocol is deterministic, frames
    /// included.
    #[test]
    fn derived_runs_replay_deterministically(
        init in 0u64..2,
        codes in proptest::collection::vec(0u8..3, 1..4),
        seed in 0u64..10_000,
    ) {
        let scripts = vec![decode_script(&codes), vec![ObjectOp::swap(1)]];
        let derived = LayeredProtocol::derive_swaps(SwapScripts::new(init, scripts), 8);
        let mut config = Configuration::initial(&derived, &[0, 0]).unwrap();
        let out = runner::run(&derived, &mut config, &mut SeededRandom::new(seed), 200).unwrap();
        let schedule: Vec<ProcessId> = out.history.iter().map(|s| s.pid).collect();
        let mut replayed = Configuration::initial(&derived, &[0, 0]).unwrap();
        let out2 =
            runner::run(&derived, &mut replayed, &mut Fixed::new(schedule), 200).unwrap();
        prop_assert_eq!(out.history, out2.history);
        prop_assert_eq!(config, replayed);
    }
}
