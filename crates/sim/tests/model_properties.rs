//! Property-based tests for the simulator's execution model: scheduler
//! contracts, history bookkeeping, and configuration indistinguishability.

use proptest::prelude::*;
use swapcons_sim::scheduler::{Fixed, RoundRobin, SeededRandom};
use swapcons_sim::testing::TwoProcessSwapConsensus;
use swapcons_sim::{runner, Configuration, ProcessId, Protocol, Scheduler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Schedulers only ever pick running processes.
    #[test]
    fn schedulers_pick_running_processes(
        seed in 0u64..1000,
        running_ids in proptest::collection::btree_set(0usize..10, 1..6),
    ) {
        let running: Vec<ProcessId> = running_ids.iter().map(|&i| ProcessId(i)).collect();
        let mut rr = RoundRobin::new();
        let mut sr = SeededRandom::new(seed);
        for step in 0..20 {
            let p = rr.pick(&running, step).unwrap();
            prop_assert!(running.contains(&p));
            let p = sr.pick(&running, step).unwrap();
            prop_assert!(running.contains(&p));
        }
    }

    /// Fixed schedules replay exactly their runnable projection.
    #[test]
    fn fixed_schedule_projection(schedule in proptest::collection::vec(0usize..2, 0..12)) {
        let pids: Vec<ProcessId> = schedule.iter().map(|&i| ProcessId(i)).collect();
        let protocol = TwoProcessSwapConsensus;
        let mut config = Configuration::initial(&protocol, &[3, 9]).unwrap();
        let mut sched = Fixed::new(pids.clone());
        let out = runner::run(&protocol, &mut config, &mut sched, 100).unwrap();
        // Each process decides on its first step; the history is the
        // schedule with duplicates-after-decision removed.
        let mut expected = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for p in &pids {
            if seen.insert(*p) {
                expected.push(*p);
            }
        }
        let got: Vec<ProcessId> = out.history.iter().map(|s| s.pid).collect();
        prop_assert_eq!(got, expected);
    }

    /// History bookkeeping: step counts per process sum to the total.
    #[test]
    fn history_step_counts_sum(seed in 0u64..500) {
        let protocol = TwoProcessSwapConsensus;
        let mut config = Configuration::initial(&protocol, &[1, 2]).unwrap();
        let out =
            runner::run(&protocol, &mut config, &mut SeededRandom::new(seed), 100).unwrap();
        let sum: usize = (0..2).map(|i| out.history.step_count_of(ProcessId(i))).sum();
        prop_assert_eq!(sum, out.history.len());
        prop_assert!(out.history.is_only_by(&[ProcessId(0), ProcessId(1)]));
    }

    /// Extending indistinguishable configurations by the same P-only
    /// schedule preserves indistinguishability when the accessed objects
    /// agree (the Section 2 extension fact the adversaries rely on).
    #[test]
    fn indistinguishability_extension(input_a in 0u64..16, input_b in 1u64..16) {
        let protocol = TwoProcessSwapConsensus;
        // Two worlds differing only in p1's input.
        let a = Configuration::initial(&protocol, &[input_a, 0]).unwrap();
        let b = Configuration::initial(&protocol, &[input_a, input_b]).unwrap();
        prop_assert!(a.indistinguishable_to(&b, &[ProcessId(0)]));
        // p0-only extension with equal object values stays indistinguishable
        // to p0 (here: one step, after which p0 has decided in both).
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        let ra = a2.step(&protocol, ProcessId(0)).unwrap();
        let rb = b2.step(&protocol, ProcessId(0)).unwrap();
        prop_assert_eq!(ra.response, rb.response);
        prop_assert!(a2.indistinguishable_to(&b2, &[ProcessId(0)]));
    }
}

/// The model checker's input odometer covers all m^n assignments.
#[test]
fn check_all_inputs_covers_the_grid() {
    use swapcons_sim::explore::ModelChecker;
    let protocol = TwoProcessSwapConsensus; // n=2, m=16
    let per_input = ModelChecker::new(10, 10_000).check(&protocol, &[0, 0]);
    let all = ModelChecker::new(10, 10_000).check_all_inputs(&protocol);
    // 256 input vectors, each with at least as many states as one run of a
    // unanimous instance (loose but effective sanity bound).
    assert!(all.states >= 256 * 2);
    assert!(all.states >= per_input.states);
    assert!(all.passed());
}

/// Protocol trait object ergonomics: &P implements Protocol.
#[test]
fn protocol_by_reference() {
    fn space<P: Protocol>(p: P) -> usize {
        p.schemas().len()
    }
    let protocol = TwoProcessSwapConsensus;
    // The borrow is the point: P = &TwoProcessSwapConsensus exercises the
    // blanket `impl Protocol for &P`.
    #[allow(clippy::needless_borrows_for_generic_args)]
    {
        assert_eq!(space(&protocol), 1);
    }
    assert_eq!(space(protocol), 1);
}
