//! Kill-and-resume driver for the crash-safe engine — the binary behind the
//! CI `kill-resume` job.
//!
//! A fixed, deterministic workload (Algorithm 1 at n = 3 under a 1-crash
//! adversary) runs with periodic atomic snapshots to `--snapshot`. The CI
//! job runs it three ways:
//!
//! 1. `--report baseline.txt` — uninterrupted, records the canonical
//!    verdict + counts;
//! 2. `--throttle-us N --report /dev/null` — the same search slowed to a
//!    crawl (a sleep per simulated step) so a `kill -9` lands mid-run with
//!    snapshots already on disk;
//! 3. `--resume --report resumed.txt` — picks the search up from the last
//!    snapshot and finishes it.
//!
//! `--threads N` runs the checkpointing search sharded (`N` workers) — the
//! snapshot format is thread-count-agnostic, so the sharded CI variant
//! kills a `--threads 2` run and resumes it with the default sequential
//! engine, still demanding a byte-identical report.
//!
//! The job then diffs `baseline.txt` against `resumed.txt`: the crash-safety
//! contract is that a search killed at **any** instant resumes to the
//! *identical* verdict and state counts, because snapshot writes are atomic
//! (tmp + fsync + rename) and resume replays the arena deterministically.
//!
//! Run locally:
//!
//! ```text
//! cargo run --release --example crash_resume -- --snapshot /tmp/cr.swck --report /tmp/base.txt
//! cargo run --release --example crash_resume -- --snapshot /tmp/cr.swck --throttle-us 300 &
//! sleep 2; kill -9 %1
//! cargo run --release --example crash_resume -- --snapshot /tmp/cr.swck --resume --report /tmp/res.txt
//! diff /tmp/base.txt /tmp/res.txt
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use swapcons::core::SwapKSet;
use swapcons::objects::{ObjectOp, ObjectSchema, Response};
use swapcons::sim::explore::{CheckReport, ModelChecker};
use swapcons::sim::task::KSetTask;
use swapcons::sim::{ObjectId, ProcessId, Protocol, Transition};

/// Snapshot cadence in visited states: small enough that several snapshots
/// land before the CI kill, large enough that snapshot IO is not the
/// bottleneck of the uninterrupted run.
const SNAPSHOT_INTERVAL: usize = 500;

/// A protocol wrapper that sleeps before every poised-operation lookup —
/// one sleep per simulated step — so the search runs long enough for an
/// external `kill -9` to land mid-run. Delegation only; the state space,
/// and therefore the snapshot contents, are identical to the inner
/// protocol's (the wrapper even keeps the inner `name()`, so a snapshot
/// taken throttled resumes unthrottled).
struct Throttled<P> {
    inner: P,
    per_step: Duration,
}

impl<P: Protocol> Protocol for Throttled<P> {
    type State = P::State;
    type Value = P::Value;

    fn name(&self) -> String {
        self.inner.name()
    }
    fn task(&self) -> KSetTask {
        self.inner.task()
    }
    fn num_objects(&self) -> usize {
        self.inner.num_objects()
    }
    fn schema(&self, obj: ObjectId) -> ObjectSchema {
        self.inner.schema(obj)
    }
    fn initial_value(&self, obj: ObjectId) -> Self::Value {
        self.inner.initial_value(obj)
    }
    fn initial_state(&self, pid: ProcessId, input: u64) -> Self::State {
        self.inner.initial_state(pid, input)
    }
    fn initial_decision(&self, pid: ProcessId, input: u64) -> Option<u64> {
        self.inner.initial_decision(pid, input)
    }
    fn poised(&self, state: &Self::State) -> (ObjectId, ObjectOp<Self::Value>) {
        std::thread::sleep(self.per_step);
        self.inner.poised(state)
    }
    fn observe(
        &self,
        state: Self::State,
        response: Response<Self::Value>,
    ) -> Transition<Self::State> {
        self.inner.observe(state, response)
    }
}

/// The fixed workload: every run of this example searches exactly this
/// space, so reports from different invocations are comparable verbatim.
fn workload() -> (SwapKSet, Vec<u64>, ModelChecker) {
    let p = SwapKSet::consensus(3, 2);
    let inputs = vec![0, 1, 1];
    let checker = ModelChecker::new(12, 200_000).with_max_failures(1);
    (p, inputs, checker)
}

/// The canonical report text the CI job diffs: verdict and every
/// deterministic counter, one per line.
fn render(report: &CheckReport) -> String {
    format!(
        "verdict={}\nstates={}\nterminal_states={}\ndeepest={}\ncomplete={}\nsymmetry_group={}\n",
        if report.passed() { "pass" } else { "fail" },
        report.states,
        report.terminal_states,
        report.deepest,
        report.complete,
        report.symmetry_group,
    )
}

struct Args {
    snapshot: PathBuf,
    report: Option<PathBuf>,
    throttle: Option<Duration>,
    resume: bool,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut snapshot = None;
    let mut report = None;
    let mut throttle = None;
    let mut resume = false;
    let mut threads = 1;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--snapshot" => snapshot = Some(PathBuf::from(value("--snapshot")?)),
            "--report" => report = Some(PathBuf::from(value("--report")?)),
            "--throttle-us" => {
                let us: u64 = value("--throttle-us")?
                    .parse()
                    .map_err(|e| format!("--throttle-us: {e}"))?;
                throttle = Some(Duration::from_micros(us));
            }
            "--resume" => resume = true,
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 || threads > swapcons::sim::shard::MAX_THREADS {
                    return Err(format!(
                        "--threads must be in 1..={}",
                        swapcons::sim::shard::MAX_THREADS
                    ));
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        snapshot: snapshot.ok_or("--snapshot <path> is required")?,
        report,
        throttle,
        resume,
        threads,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!(
                "crash_resume: {e}\nusage: crash_resume --snapshot <path> \
                 [--report <path>] [--throttle-us <n>] [--resume]"
            );
            return ExitCode::FAILURE;
        }
    };
    let (p, inputs, checker) = workload();
    // Snapshot parity across thread counts is part of the crash-safety
    // contract: a sharded checkpointing run killed mid-flight resumes —
    // sequentially, as `ModelChecker::resume*` always does — to the same
    // report as an uninterrupted sequential baseline.
    let checker = checker.with_threads(args.threads);
    let outcome = if args.resume {
        checker.resume_from_file(&p, &inputs, &args.snapshot, SNAPSHOT_INTERVAL)
    } else if let Some(per_step) = args.throttle {
        let slow = Throttled { inner: p, per_step };
        checker.check_with_snapshot_file(&slow, &inputs, &args.snapshot, SNAPSHOT_INTERVAL)
    } else {
        checker.check_with_snapshot_file(&p, &inputs, &args.snapshot, SNAPSHOT_INTERVAL)
    };
    let report = match outcome {
        Ok(report) => report,
        Err(e) => {
            eprintln!("crash_resume: search failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = render(&report);
    print!("{rendered}");
    if let Some(path) = args.report {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("crash_resume: writing report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
