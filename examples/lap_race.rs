//! Watch Algorithm 1's race unfold under a deterministic schedule: the lap
//! counters in the shared swap objects, the conflicts, and the final
//! 2-lap-lead decisions.
//!
//! Run: `cargo run --example lap_race`

use swapcons::core::algorithm1::SwapKSet;
use swapcons::sim::scheduler::SeededRandom;
use swapcons::sim::{runner, Configuration, ObjectId, ProcessId, Protocol};

fn print_objects(config: &Configuration<SwapKSet>, space: usize) {
    let cells: Vec<String> = (0..space)
        .map(|i| format!("{:?}", config.value(ObjectId(i))))
        .collect();
    println!("    objects: {}", cells.join("  "));
}

fn main() {
    let n = 4;
    let protocol = SwapKSet::consensus(n, 2);
    let inputs = [0u64, 1, 0, 1];
    println!("{}", protocol.name());
    println!("inputs: {inputs:?}\n");

    let mut config = Configuration::initial(&protocol, &inputs).unwrap();
    print_objects(&config, protocol.space());

    // Phase 1: 24 steps of seeded-random contention, narrating each swap.
    let mut sched = SeededRandom::new(42);
    for step in 0..24 {
        let running = config.running();
        if running.is_empty() {
            break;
        }
        let Some(pid) = swapcons::sim::Scheduler::pick(&mut sched, &running, step) else {
            break;
        };
        let rec = config.step(&protocol, pid).unwrap();
        println!("step {step:>2}: {rec:?}");
        if (step + 1) % 8 == 0 {
            print_objects(&config, protocol.space());
        }
    }

    // Phase 2: let each process finish solo (obstruction-freedom: each
    // decides within 8(n-k) steps — Lemma 8).
    println!("\n-- contention ends; processes finish solo --");
    for pid in config.running() {
        let out = runner::solo_run(&protocol, &mut config, pid, protocol.solo_step_bound())
            .expect("Lemma 8");
        println!(
            "{pid} decides {} after {} solo steps",
            out.decision, out.steps
        );
    }

    print_objects(&config, protocol.space());
    let decided = config.decided_values();
    println!(
        "\ndecided values: {decided:?} (agreement: {})",
        decided.len() == 1
    );
    assert_eq!(decided.len(), 1);

    // Show a process's final local view.
    for pid in 0..n {
        println!("p{pid} decision: {:?}", config.decision(ProcessId(pid)));
    }
}
