//! Run the Lemma 9 lower-bound adversary against Algorithm 1, narrating the
//! construction from Figure 1 of the paper: two worlds, per-process solo
//! mirroring, and one new swap object forced per fresh process.
//!
//! Run: `cargo run --example lemma9_adversary`

use swapcons::core::SwapKSet;
use swapcons::lower::lemma9;
use swapcons::sim::Protocol;

fn main() {
    println!("Theorem 10, base case (k = 1), executed as the Lemma 9 adversary.\n");
    for n in [3usize, 5, 8, 12] {
        let protocol = SwapKSet::consensus(n, 2);
        println!("--- n = {n}: {} ---", protocol.name());
        println!(
            "C: p0 has input 0, p1..p{} have input 1; α = p0's solo run (decides 0).",
            n - 1
        );
        println!("Q = {{p1, …, p{}}}, v = 1, |Q| = {}.", n - 1, n - 1);
        let report = lemma9::theorem10_consensus_witness(&protocol, protocol.solo_step_bound())
            .expect("the construction succeeds against a correct algorithm");
        println!(
            "adversary forced {} distinct swap objects: {:?}",
            report.forced_objects.len(),
            report.forced_objects
        );
        println!(
            "per-process mirrored steps: {:?} (each stops right after its first swap \
             outside the equalized set)",
            report.steps_per_process
        );
        assert_eq!(report.forced_objects.len(), n - 1);
        println!(
            "=> the algorithm uses ≥ {} swap objects; Algorithm 1 has exactly {} — tight.\n",
            n - 1,
            protocol.num_objects()
        );
    }

    // The construction must REFUSE readable objects: a Read learns without
    // overwriting, which is exactly why Theorem 10 does not cover them.
    use swapcons::baselines::ReadableRacing;
    use swapcons::sim::{Configuration, ProcessId};
    let readable = ReadableRacing::new(4, 2);
    let config = Configuration::initial(&readable, &[0, 1, 1, 1]).unwrap();
    let q: Vec<ProcessId> = (1..4).map(ProcessId).collect();
    let err = lemma9::run(&readable, &config, &q, 1, readable.solo_step_bound()).unwrap_err();
    println!("against readable swap objects the adversary refuses, as the theory demands:");
    println!("  {err}\n");

    // The full Theorem 10 induction for k > 1: hunt for a k-valued R'-only
    // execution, else descend — exactly the proof's case split.
    use swapcons::lower::theorem10::{self, SearchBudget};
    println!("Theorem 10 full induction (k > 1):");
    for (n, k) in [(4usize, 2usize), (6, 2), (6, 3), (9, 3)] {
        let p = swapcons::core::SwapKSet::new(n, k, (k + 1) as u64);
        let report =
            theorem10::kset_witness(&p, p.solo_step_bound(), SearchBudget::default()).unwrap();
        println!("  Algorithm 1, n={n} k={k}: {report}");
        for level in &report.levels {
            println!("    {level:?}");
        }
        assert!(report.forced() >= report.theorem_bound);
    }
}
