//! Exhaustively (bounded) model-check every algorithm in the repository on
//! small instances: k-agreement + validity on every reachable
//! configuration, and solo termination (obstruction-freedom) from every
//! visited state.
//!
//! Run: `cargo run --release --example model_check`

use swapcons::baselines::{BinaryRacing, CommitAdoptConsensus, ReadableRacing, RegisterKSet};
use swapcons::core::hierarchy::TasConsensus;
use swapcons::core::pairs::PairsKSet;
use swapcons::core::SwapKSet;
use swapcons::sim::explore::ModelChecker;
use swapcons::sim::Protocol;

fn check<P: Protocol>(protocol: &P, inputs: &[u64], checker: ModelChecker) {
    let report = checker.check(protocol, inputs);
    let status = if report.passed() { "PASS" } else { "FAIL" };
    println!(
        "[{status}] {:<70} inputs {:?}\n        {report}",
        protocol.name(),
        inputs
    );
    assert!(report.passed(), "{report}");
}

fn main() {
    println!("Bounded-exhaustive model checking (safety on every reachable state):\n");

    let p = SwapKSet::consensus(2, 2);
    check(
        &p,
        &[0, 1],
        ModelChecker::new(26, 120_000).with_solo_budget(p.solo_step_bound()),
    );

    let p = SwapKSet::consensus(3, 2);
    check(&p, &[0, 1, 1], ModelChecker::new(20, 250_000));

    let p = SwapKSet::new(3, 2, 3);
    check(
        &p,
        &[0, 1, 2],
        ModelChecker::new(16, 150_000).with_solo_budget(p.solo_step_bound()),
    );

    let p = PairsKSet::new(4, 2, 3);
    check(
        &p,
        &[0, 1, 2, 2],
        ModelChecker::new(10, 50_000).with_solo_budget(1),
    );

    let p = CommitAdoptConsensus::new(2, 2);
    check(
        &p,
        &[0, 1],
        ModelChecker::new(24, 150_000).with_solo_budget(p.solo_step_bound()),
    );

    let p = RegisterKSet::new(3, 2, 3);
    check(&p, &[0, 1, 2], ModelChecker::new(20, 150_000));

    let p = ReadableRacing::new(2, 2);
    check(
        &p,
        &[0, 1],
        ModelChecker::new(24, 150_000).with_solo_budget(p.solo_step_bound()),
    );

    let p = BinaryRacing::with_track_len(2, 8);
    check(&p, &[0, 1], ModelChecker::new(28, 200_000));

    let p = BinaryRacing::with_track_len(3, 8);
    check(&p, &[0, 1, 1], ModelChecker::new(16, 200_000));

    let p = TasConsensus;
    check(
        &p,
        &[3, 8],
        ModelChecker::new(12, 50_000).with_solo_budget(p.step_bound()),
    );

    println!("\nall model checks passed.");
}
