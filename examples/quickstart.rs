//! Quickstart: obstruction-free k-set agreement among real threads, using
//! exactly `n-k` lock-free swap objects (Algorithm 1 of the paper).
//!
//! Run: `cargo run --example quickstart`

use std::collections::HashSet;

use swapcons::core::threaded::ThreadedKSet;

fn main() {
    // 8 threads, 2-set agreement, inputs from {0, 1, 2}.
    let n = 8;
    let k = 2;
    let m = 3;
    let alg = ThreadedKSet::new(n, k, m);
    println!(
        "running {n} threads on {} swap objects (n-k = {}), k = {k}, inputs 0..{m}",
        alg.space(),
        n - k
    );

    let inputs: Vec<u64> = (0..n).map(|i| (i as u64) % m).collect();
    let decisions = alg.run(&inputs);

    println!("inputs:    {inputs:?}");
    println!("decisions: {decisions:?}");

    let distinct: HashSet<u64> = decisions.iter().copied().collect();
    assert!(distinct.len() <= k, "k-agreement violated");
    for d in &decisions {
        assert!(inputs.contains(d), "validity violated");
    }
    println!(
        "k-agreement ✓ ({} distinct value(s) ≤ k = {k}), validity ✓",
        distinct.len()
    );

    // The same algorithm, single proposer: a solo run decides its own input
    // (obstruction-freedom + validity).
    let alg = ThreadedKSet::new(4, 1, 2);
    let d = alg.propose(0, 1);
    assert_eq!(d, 1);
    println!("solo proposer decided its own input ✓");
}
