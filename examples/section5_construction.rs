//! Execute the Section 5 inductive lower-bound constructions (Lemma 16 for
//! Theorem 18, Lemma 20 for Theorem 22) against the binary-object consensus
//! baseline, printing each stage's critical step and re-verified invariants.
//!
//! Run: `cargo run --release --example section5_construction`

use swapcons::baselines::BinaryRacing;
use swapcons::lower::section5::{self, Budgets, StageCase};

fn main() {
    println!("Section 5 constructions against binary-object consensus.\n");

    for n in [3usize, 4] {
        let protocol = BinaryRacing::with_track_len(n, 8);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();

        println!(
            "=== Lemma 16 (Theorem 18) at n = {n}: target {} stage(s) ===",
            n - 2
        );
        let report = section5::lemma16_driver(&protocol, &inputs, &Budgets::small());
        for s in &report.stages {
            println!(
                "stage {}: sacrificed p{} | γ length {} | critical j = {} | object {:?} \
                 value {} | {}",
                s.i,
                s.process.index(),
                s.gamma_len,
                s.j,
                s.object,
                s.value,
                match s.case {
                    StageCase::Frozen => "FROZEN (joins X: touching this value kills bivalence)",
                    StageCase::Covered => "COVERED (joins Y: p is poised to overwrite it)",
                }
            );
            assert!(s.invariants_ok, "invariants re-verified at every stage");
        }
        println!("result: {report}");
        assert!(report.complete(), "small instances must complete");
        println!();

        println!("=== Lemma 20 (Theorem 22, b = 2) at n = {n} ===");
        let report = section5::lemma20_driver(&protocol, &inputs, &Budgets::small());
        for s in &report.stages {
            println!(
                "stage {}: p{} | j = {} | object {:?} value {} | {:?} | accounting ok: {}",
                s.i,
                s.process.index(),
                s.j,
                s.object,
                s.value,
                s.case,
                s.invariants_ok
            );
        }
        println!(
            "result: {report}\n  (Lemma 20 invariant: Σ(2|f|+|g|) + |S| ≥ stages completed)\n"
        );
    }
}
