//! Regenerate Table 1 of the paper: lower/upper bound formulas evaluated
//! next to the measured object counts of this repository's witnesses.
//!
//! Run: `cargo run --example table1`

use swapcons::lower::table1;

fn main() {
    let ns = [4usize, 8, 16, 64, 256];
    let ks = [2usize, 4];
    let entries = table1::generate(&ns, &ks, 2);
    println!("{}", table1::render(&entries));

    let violations = table1::violations(&entries);
    if violations.is_empty() {
        println!("cross-check ✓: no implementation in this repository uses fewer objects");
        println!("than the paper's lower bound for its row.");
    } else {
        println!("INCONSISTENCY — implementations beating paper lower bounds:");
        for v in violations {
            println!("  {v:?}");
        }
        std::process::exit(1);
    }
}
