//! # swapcons — umbrella crate
//!
//! Executable reproduction of *The Space Complexity of Consensus from Swap*
//! (Sean Ovens, PODC 2022 / arXiv:2305.06507). This crate re-exports the
//! workspace's public API:
//!
//! * [`objects`] — historyless object model (swap, readable swap, register,
//!   test-and-set), deterministic cells, and lock-free atomic objects.
//! * [`sim`] — deterministic asynchronous shared-memory simulator,
//!   schedulers, traces, and an exhaustive model checker.
//! * [`core`] — Algorithm 1 (obstruction-free m-valued k-set agreement from
//!   `n-k` swap objects) in simulator and threaded forms, plus the paper's
//!   wait-free constructions.
//! * [`baselines`] — the register and binary-object algorithms Table 1
//!   compares against.
//! * [`lower`] — the executable lower-bound machinery: the Lemma 9
//!   overwriting adversary, valency oracles, and the Section 5 inductive
//!   constructions.
//!
//! # Quickstart
//!
//! Run obstruction-free k-set agreement among real threads:
//!
//! ```
//! use swapcons::core::threaded::ThreadedKSet;
//!
//! // 6 processes, 2-set agreement, inputs from {0,1,2}: at most 2 distinct
//! // decisions, each some process's input. Uses exactly n-k = 4 swap objects.
//! let decisions = ThreadedKSet::new(6, 2, 3).run(&[0, 1, 2, 0, 1, 2]);
//! let distinct: std::collections::HashSet<_> = decisions.iter().copied().collect();
//! assert!(distinct.len() <= 2);
//! for d in decisions {
//!     assert!([0u64, 1, 2].contains(&d));
//! }
//! ```

pub use swapcons_baselines as baselines;
pub use swapcons_core as core;
pub use swapcons_lower as lower;
pub use swapcons_objects as objects;
pub use swapcons_sim as sim;

#[cfg(test)]
mod tests {
    /// Regression guard for the `core` naming hazard: `pub use swapcons_core
    /// as core` lives in the crate's type namespace only, so paths to Rust's
    /// built-in `core` crate must keep resolving alongside it.
    #[test]
    fn core_reexport_coexists_with_builtin_core() {
        let one: ::core::primitive::u64 = 1;
        let alg = crate::core::threaded::ThreadedKSet::new(2, 1, 2);
        assert_eq!(alg.space(), one as usize, "n-k = 1 swap object");
    }
}
