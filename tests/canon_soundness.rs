//! Canonicalization soundness, cross-crate: symmetry-reduced search must
//! reach exactly the verdicts of full search, on permuted-pid *and*
//! permuted-value instances, for the model checker and the valency oracle
//! alike. (The hand-computable orbit-counting unit test lives next to the
//! checker in `swapcons-sim/src/explore.rs`; these are the property-based
//! whole-zoo versions.)

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use swapcons::baselines::{BinaryRacing, CommitAdoptConsensus, ReadableRacing, RegisterKSet};
use swapcons::core::hierarchy::TasConsensus;
use swapcons::core::pairs::PairsKSet;
use swapcons::core::SwapKSet;
use swapcons::lower::ValencyOracle;
use swapcons::sim::canon::CanonicalVisitedSet;
use swapcons::sim::explore::ModelChecker;
use swapcons::sim::scheduler::SeededRandom;
use swapcons::sim::testing::{SelfishConsensus, TwoProcessSwapConsensus};
use swapcons::sim::{runner, Canonicalizer, Configuration, ProcessId, Protocol};

/// Asserts the pruned stabilizer-chain minimal-image key equals the
/// test-only full-|G| enumeration key on every configuration along a
/// seeded random execution of `p` from `inputs`.
fn chain_matches_scan<P: Protocol>(
    p: &P,
    inputs: &[u64],
    seed: u64,
    steps: usize,
) -> Result<(), TestCaseError> {
    let vs: CanonicalVisitedSet<P> = CanonicalVisitedSet::new(Canonicalizer::for_inputs(p, inputs));
    let mut config = Configuration::initial(p, inputs).unwrap();
    let mut sched = SeededRandom::new(seed);
    prop_assert_eq!(
        vs.orbit_key_pruned(p, &config),
        vs.orbit_key_unpruned(p, &config),
        "initial config of {}",
        p.name()
    );
    for _ in 0..steps {
        if runner::run(p, &mut config, &mut sched, 1).unwrap().steps == 0 {
            break; // execution over: everyone decided
        }
        prop_assert_eq!(
            vs.orbit_key_pruned(p, &config),
            vs.orbit_key_unpruned(p, &config),
            "reached config of {}",
            p.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PR 9 tentpole parity: the pruned stabilizer-chain search and the old
    /// full-group scan (kept behind the test-only `orbit_key_unpruned`
    /// path) compute the same orbit-minimal image key, on random reachable
    /// states, across every protocol in the zoo's declared group — the two
    /// paper algorithms, the four baselines, the hierarchy witness, and
    /// both self-test protocols (including an over-cap declaration, so the
    /// degraded prefix subgroup is covered too).
    #[test]
    fn chain_minimal_image_matches_full_scan(
        seed in 0u64..500, steps in 0usize..10, a in 0u64..2, b in 0u64..2, c in 0u64..2
    ) {
        chain_matches_scan(&SwapKSet::consensus(3, 2), &[a, b, c], seed, steps)?;
        chain_matches_scan(&PairsKSet::new(4, 2, 3), &[a + b, c, a, b + c], seed, steps)?;
        chain_matches_scan(&TasConsensus, &[a + 3, b + 9], seed, steps)?;
        chain_matches_scan(&BinaryRacing::with_track_len(3, 8), &[a, b, c], seed, steps)?;
        chain_matches_scan(&CommitAdoptConsensus::new(3, 3), &[a + c, b, a], seed, steps)?;
        chain_matches_scan(&ReadableRacing::new(3, 2), &[a, b, c], seed, steps)?;
        chain_matches_scan(&RegisterKSet::new(3, 2, 2), &[a, b, c], seed, steps)?;
        chain_matches_scan(&TwoProcessSwapConsensus, &[a + 4, b + 11], seed, steps)?;
        chain_matches_scan(&SelfishConsensus { n: 8 }, &[a, b, c, a, b, c, a, b], seed, steps)?;

        // Oracle-style retained stabilizer subgroups (the valency query
        // path) keep the parity too: the chain search never assumed the
        // full input-stabilizer group.
        let p = PairsKSet::new(4, 2, 3);
        let inputs = [a, b + 1, c + 1, a + b];
        let mut config = Configuration::initial(&p, &inputs).unwrap();
        runner::run(&p, &mut config, &mut SeededRandom::new(seed), steps).unwrap();
        let mut canon = Canonicalizer::for_inputs(&p, &inputs);
        let group = [ProcessId(0), ProcessId(1)];
        canon.retain(|g| g.stabilizes(&group));
        let vs: CanonicalVisitedSet<PairsKSet> = CanonicalVisitedSet::new(canon);
        prop_assert_eq!(vs.orbit_key_pruned(&p, &config), vs.orbit_key_unpruned(&p, &config));
    }

    /// Reduced and full model checks of Algorithm 1 reach the same verdict
    /// on every input vector, never exploring more states.
    #[test]
    fn alg1_reduced_check_matches_full(a in 0u64..2, b in 0u64..2, c in 0u64..2) {
        let p = SwapKSet::consensus(3, 2);
        let checker = ModelChecker::new(10, 100_000);
        let full = checker.check(&p, &[a, b, c]);
        let reduced = checker.with_symmetry_reduction().check(&p, &[a, b, c]);
        prop_assert!(full.same_verdict(&reduced), "{} vs {}", full, reduced);
        prop_assert!(reduced.states <= full.states);
    }

    /// Process-permuted runs of a process-symmetric protocol reach the same
    /// verdicts, reduced or not. (The reduced `check_all_inputs`
    /// grid-skipping relies on exactly this.) State counts are compared
    /// only for exhaustive searches: under a depth cutoff the bounded
    /// region legitimately depends on discovery order — the PR 2 artifact —
    /// so Algorithm 1's infinite space checks verdicts, and the wait-free
    /// TwoProcessSwapConsensus (finite space) checks exact isomorphism.
    #[test]
    fn permuted_pid_runs_are_isomorphic(a in 0u64..2, b in 0u64..2, c in 0u64..2) {
        let p = SwapKSet::consensus(3, 2);
        let checker = ModelChecker::new(10, 100_000).with_solo_budget(p.solo_step_bound());
        let base = checker.check(&p, &[a, b, c]);
        for permuted in [[b, a, c], [c, b, a], [a, c, b]] {
            let other = checker.check(&p, &permuted);
            prop_assert!(base.same_verdict(&other));
        }
        let reduced = checker.with_symmetry_reduction().check(&p, &[a, b, c]);
        let reduced_perm = checker.with_symmetry_reduction().check(&p, &[b, a, c]);
        prop_assert!(reduced.same_verdict(&reduced_perm));
        // Exhaustive instance: permuted runs are exactly isomorphic.
        let p = TwoProcessSwapConsensus;
        let checker = ModelChecker::new(10, 10_000);
        let fwd = checker.check(&p, &[a, b]);
        let rev = checker.check(&p, &[b, a]);
        prop_assert!(fwd.complete && rev.complete);
        prop_assert_eq!(fwd.states, rev.states);
        prop_assert!(fwd.same_verdict(&rev));
    }

    /// Value-permuted runs of a value-oblivious protocol are isomorphic —
    /// the cross-run face of value symmetry (within-run renamings cannot
    /// test it, since they must stabilize the input vector).
    #[test]
    fn permuted_value_runs_are_isomorphic(a in 0u64..16, b in 0u64..16, offset in 1u64..16) {
        let p = TwoProcessSwapConsensus;
        let checker = ModelChecker::new(10, 10_000);
        let base = checker.check(&p, &[a, b]);
        // Shift both inputs by a value permutation (mod-16 rotation).
        let shifted = [(a + offset) % 16, (b + offset) % 16];
        let other = checker.check(&p, &shifted);
        prop_assert!(base.same_verdict(&other));
        prop_assert_eq!(base.states, other.states);
        // Commit-adopt: value-oblivious over m = 3.
        let p = CommitAdoptConsensus::new(2, 3);
        let checker = ModelChecker::new(10, 100_000);
        let base = checker.check(&p, &[a % 3, b % 3]);
        let rotated = checker.check(&p, &[(a + 1) % 3, (b + 1) % 3]);
        prop_assert!(base.same_verdict(&rotated));
        prop_assert_eq!(base.states, rotated.states);
    }

    /// The valency oracle under reduction, from arbitrary reachable
    /// configurations. On a *finite* group-only space (the wait-free pairs
    /// construction) both searches are exhaustive and must agree exactly —
    /// verdict, witness-value set, and exhaustiveness. On Algorithm 1's
    /// *infinite* racing space both are depth-truncated, and the bounded
    /// regions legitimately diverge with discovery order (the EXPERIMENTS
    /// PR 2/PR 3 artifact), so only order-insensitive claims are asserted:
    /// no extra states, found witnesses replay, exact agreement whenever
    /// both searches happen to be exhaustive.
    #[test]
    fn valency_oracle_reduced_matches_full(seed in 0u64..200, contention in 0usize..12) {
        // Finite space: exact agreement, unconditionally.
        let p = PairsKSet::new(4, 2, 3);
        let mut config = Configuration::initial(&p, &[0, 1, 2, 1]).unwrap();
        runner::run(&p, &mut config, &mut SeededRandom::new(seed), contention % 4).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let full = ValencyOracle::new(16, 30_000).query(&p, &config, &group);
        let reduced = ValencyOracle::new(16, 30_000)
            .with_symmetry_reduction()
            .query(&p, &config, &group);
        // (No exhaustiveness assertion: a bivalent query early-exits with
        // `exhaustive == false` by design. The space is finite and depth 16
        // covers it, so any non-early-exited search IS exhaustive and the
        // full witness-value set is found either way.)
        prop_assert_eq!(full.verdict(), reduced.verdict());
        let keys = |r: &swapcons::lower::valency::ValencyResult| {
            r.witnesses.keys().copied().collect::<std::collections::BTreeSet<u64>>()
        };
        prop_assert_eq!(keys(&full), keys(&reduced));
        prop_assert!(reduced.states <= full.states);

        // Infinite space: truncated searches, order-insensitive claims only.
        let p = SwapKSet::consensus(3, 2);
        let mut config = Configuration::initial(&p, &[0, 1, 1]).unwrap();
        runner::run(&p, &mut config, &mut SeededRandom::new(seed), contention).unwrap();
        let group = [ProcessId(1), ProcessId(2)];
        let full = ValencyOracle::new(16, 30_000).query(&p, &config, &group);
        let reduced = ValencyOracle::new(16, 30_000)
            .with_symmetry_reduction()
            .query(&p, &config, &group);
        prop_assert!(reduced.states <= full.states);
        if full.exhaustive && reduced.exhaustive {
            prop_assert_eq!(full.verdict(), reduced.verdict());
            prop_assert_eq!(keys(&full), keys(&reduced));
        }
        for (&v, schedule) in &reduced.witnesses {
            let mut replay = config.clone();
            let h = runner::replay(&p, &mut replay, schedule).unwrap();
            prop_assert!(h.decisions().iter().any(|&(_, d)| d == v));
        }
    }

    /// Binary racing under reduction: same verdicts across the n=2 input
    /// grid. Since the value-coupled track class landed, the two input
    /// values ARE interchangeable — but only together with the track swap
    /// the coupling forces, so every input vector (not just the unanimous
    /// ones) now runs with a nontrivial group.
    #[test]
    fn binary_racing_reduced_check_matches_full(a in 0u64..2, b in 0u64..2) {
        let p = BinaryRacing::with_track_len(2, 8);
        let checker = ModelChecker::new(14, 100_000);
        let full = checker.check(&p, &[a, b]);
        let reduced = checker.with_symmetry_reduction().check(&p, &[a, b]);
        prop_assert!(full.same_verdict(&reduced), "{} vs {}", full, reduced);
        prop_assert!(reduced.states <= full.states);
        prop_assert_eq!(reduced.symmetry_group, 2, "{}", reduced);
    }

    /// Object-permuted runs are isomorphic. Mirroring a `BinaryRacing`
    /// instance (flip every input; the coupled renaming flips preferences
    /// and swaps the two tracks, with π = id so even the DFS traversal
    /// order is preserved) and pair-swapping a `PairsKSet` instance (finite
    /// space, so exhaustive either way) both rename executions one-to-one:
    /// full checks must reach identical verdicts and state counts.
    #[test]
    fn object_permuted_runs_are_isomorphic(a in 0u64..2, b in 0u64..2, c in 0u64..2) {
        let p = BinaryRacing::with_track_len(3, 8);
        let checker = ModelChecker::new(12, 100_000);
        let base = checker.check(&p, &[a, b, c]);
        let mirrored = checker.check(&p, &[1 - a, 1 - b, 1 - c]);
        prop_assert!(base.same_verdict(&mirrored), "{} vs {}", base, mirrored);
        prop_assert_eq!(base.states, mirrored.states);
        // Pair swap: pair (p0,p1) trades places with pair (p2,p3), object
        // and all.
        let p = PairsKSet::new(4, 2, 3);
        let inputs = [a, b, c, (a + b) % 3];
        let swapped = [c, (a + b) % 3, a, b];
        let checker = ModelChecker::new(10, 100_000).with_solo_budget(1);
        let base = checker.check(&p, &inputs);
        let other = checker.check(&p, &swapped);
        prop_assert!(base.complete && other.complete);
        prop_assert!(base.same_verdict(&other), "{} vs {}", base, other);
        prop_assert_eq!(base.states, other.states);
    }

    /// The oracle's composed stabilizer, from arbitrary reachable
    /// configurations: whatever contention prefix ran, the reduced query
    /// must reach the full query's verdict and witness-value set (the
    /// stabilizer adapts per configuration — symmetric roots get the track
    /// swap, asymmetric ones degrade toward trivial, both soundly).
    #[test]
    fn oracle_stabilizer_matches_full_from_reachable_configs(
        seed in 0u64..100, contention in 0usize..10
    ) {
        let p = BinaryRacing::with_track_len(4, 10);
        let mut config = Configuration::initial(&p, &[0, 1, 0, 1]).unwrap();
        runner::run(&p, &mut config, &mut SeededRandom::new(seed), contention).unwrap();
        let group = [ProcessId(0), ProcessId(1)];
        let full = ValencyOracle::new(12, 30_000).query(&p, &config, &group);
        let reduced = ValencyOracle::new(12, 30_000)
            .with_symmetry_reduction()
            .query(&p, &config, &group);
        prop_assert!(reduced.states <= full.states);
        let keys = |r: &swapcons::lower::valency::ValencyResult| {
            r.witnesses.keys().copied().collect::<std::collections::BTreeSet<u64>>()
        };
        if full.exhaustive && reduced.exhaustive {
            prop_assert_eq!(full.verdict(), reduced.verdict());
            prop_assert_eq!(keys(&full), keys(&reduced));
        }
        for (&v, schedule) in &reduced.witnesses {
            let mut replay = config.clone();
            let h = runner::replay(&p, &mut replay, schedule).unwrap();
            prop_assert!(h.decisions().iter().any(|&(_, d)| d == v));
        }
    }
}

/// Hash compaction composes with reduction and still reaches the right
/// verdict on these tiny (collision-free in practice) instances — while
/// remaining excluded from `proves_safety`.
#[test]
fn compaction_plus_reduction_verdicts() {
    let p = SwapKSet::consensus(3, 2);
    let exact = ModelChecker::new(10, 100_000).check(&p, &[1, 1, 1]);
    let compact = ModelChecker::new(10, 100_000)
        .with_symmetry_reduction()
        .unsound_hash_compaction()
        .check(&p, &[1, 1, 1]);
    assert!(exact.same_verdict(&compact), "{exact} vs {compact}");
    assert!(compact.hash_compaction);
    assert!(!compact.proves_safety());
}
