//! Integration + property coverage for the crash-safe engine: checkpoint /
//! resume parity, snapshot-file integrity, and deadline interruption.
//!
//! The contract under test (PR 7's tentpole): a search interrupted at *any*
//! point — an in-memory pause, a wall-clock deadline, or a process kill
//! between atomic snapshot writes — resumes to the **identical** verdict
//! and state counts as the uninterrupted run, including under symmetry
//! reduction (where resume must re-insert discovered configurations in
//! discovery order so the quotient picks the same orbit representatives).
//! And a snapshot that was corrupted, truncated, or written by a different
//! format version is rejected with a typed [`SnapshotError`] — never a
//! panic, never a silently wrong verdict.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use swapcons::core::SwapKSet;
use swapcons::sim::explore::ModelChecker;
use swapcons::sim::snapshot::{
    from_snapshot_bytes, read_snapshot, write_snapshot, SnapshotError, FORMAT_VERSION,
};
use swapcons::sim::testing::TwoProcessSwapConsensus;

/// A collision-free temp path for one test's snapshot file.
fn temp_snapshot(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("swck-resume-{}-{tag}.swck", std::process::id()))
}

/// Thread count for the pre-interruption search legs, from
/// `SWAPCONS_THREADS` (default 1). The CI `parity-sharded` matrix re-runs
/// this whole suite at 2 and 4 threads: the interrupted legs then run on
/// the sharded engine, while resume legs always finish sequentially (the
/// engine's contract), so every row here doubles as a
/// sharded-vs-sequential parity gate over the snapshot format.
fn env_threads() -> usize {
    std::env::var("SWAPCONS_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// Pristine snapshot bytes from a real paused search, generated once and
/// shared by the corruption properties (the search itself is deterministic).
fn pristine_snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let p = SwapKSet::consensus(2, 2);
        let checker = ModelChecker::new(10, 10_000)
            .with_max_failures(1)
            .with_threads(env_threads());
        let path = temp_snapshot("pristine");
        let report = checker
            .check_with_snapshot_file(&p, &[0, 1], &path, 8)
            .expect("snapshot writes succeed");
        assert!(report.passed(), "{report}");
        let bytes = std::fs::read(&path).expect("snapshot file exists");
        let _ = std::fs::remove_file(&path);
        assert!(bytes.len() > 24, "non-trivial snapshot");
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pause at a random state cutoff, resume, and get exactly the verdict
    /// and counts of the uninterrupted run — across protocols, crash
    /// budgets, and (the subtle row) symmetry reduction.
    #[test]
    fn pause_resume_parity_at_any_cutoff(
        cutoff in 1usize..400,
        max_failures in 0usize..2,
        reduced in 0u8..2,
        two_process in 0u8..2,
    ) {
        let (reduced, two_process) = (reduced == 1, two_process == 1);
        let mut checker = ModelChecker::new(9, 20_000)
            .with_max_failures(max_failures)
            .with_threads(env_threads());
        if reduced {
            checker = checker.with_symmetry_reduction();
        }
        let (baseline, outcome) = if two_process {
            let p = TwoProcessSwapConsensus;
            let checker = checker.with_solo_budget(2);
            (
                checker.check(&p, &[0, 1]),
                checker.check_paused(&p, &[0, 1], cutoff),
            )
        } else {
            let p = SwapKSet::consensus(2, 2);
            (
                checker.check(&p, &[0, 1]),
                checker.check_paused(&p, &[0, 1], cutoff),
            )
        };
        let (partial, image) = outcome;
        let resumed = match image {
            Some(image) => {
                prop_assert!(partial.paused, "{partial}");
                prop_assert!(partial.states <= baseline.states);
                let p2 = SwapKSet::consensus(2, 2);
                if two_process {
                    checker.with_solo_budget(2).resume(&TwoProcessSwapConsensus, &[0, 1], &image)
                        .expect("own image resumes")
                } else {
                    checker.resume(&p2, &[0, 1], &image).expect("own image resumes")
                }
            }
            // Finished before the cutoff fired: the report is already final.
            None => partial,
        };
        prop_assert!(baseline.same_verdict(&resumed), "{baseline} vs {resumed}");
        prop_assert_eq!(resumed.states, baseline.states, "state-count parity");
        prop_assert_eq!(resumed.terminal_states, baseline.terminal_states);
        prop_assert_eq!(resumed.deepest, baseline.deepest);
        prop_assert!(!resumed.paused && !resumed.deadline_truncated);
    }

    /// Any single flipped byte anywhere in a snapshot file is rejected with
    /// a typed error — never a panic, never a quietly-wrong image.
    #[test]
    fn any_single_byte_corruption_is_rejected(
        index in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let mut bytes = pristine_snapshot_bytes().to_vec();
        let index = index % bytes.len();
        bytes[index] ^= flip;
        let err = from_snapshot_bytes(&bytes)
            .expect_err("corrupted snapshot must not decode");
        prop_assert!(
            matches!(
                err,
                SnapshotError::BadMagic
                    | SnapshotError::VersionMismatch { .. }
                    | SnapshotError::ChecksumMismatch
                    | SnapshotError::Corrupt(_)
            ),
            "unexpected rejection: {err}"
        );
    }

    /// Truncating a snapshot at any point is likewise a typed rejection.
    #[test]
    fn any_truncation_is_rejected(cut in 0usize..4096) {
        let bytes = pristine_snapshot_bytes();
        let cut = cut % bytes.len();
        let err = from_snapshot_bytes(&bytes[..cut])
            .expect_err("truncated snapshot must not decode");
        prop_assert!(
            matches!(
                err,
                SnapshotError::BadMagic | SnapshotError::ChecksumMismatch
            ),
            "unexpected rejection: {err}"
        );
    }
}

#[test]
fn version_patched_snapshot_is_rejected_with_the_versions() {
    // A snapshot from a future format version names both versions in the
    // error, so the fix (rerun or upgrade) is obvious from the message.
    let mut bytes = pristine_snapshot_bytes().to_vec();
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match from_snapshot_bytes(&bytes) {
        Err(SnapshotError::VersionMismatch { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected a version mismatch, got {other:?}"),
    }
}

#[test]
fn file_resume_rejects_corruption_and_meta_mismatch_not_panics() {
    let p = SwapKSet::consensus(2, 2);
    let checker = ModelChecker::new(10, 10_000).with_max_failures(1);
    let path = temp_snapshot("reject");

    // A corrupted file on disk: resume_from_file returns the typed error.
    let mut bytes = pristine_snapshot_bytes().to_vec();
    let mid = 24 + (bytes.len() - 24) / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        checker.resume_from_file(&p, &[0, 1], &path, 8),
        Err(SnapshotError::ChecksumMismatch)
    ));

    // An intact file from *different* checker parameters: a meta mismatch
    // naming the divergent field, not a silently re-budgeted search.
    std::fs::write(&path, pristine_snapshot_bytes()).unwrap();
    let other = ModelChecker::new(10, 9_999).with_max_failures(1);
    match other.resume_from_file(&p, &[0, 1], &path, 8) {
        Err(SnapshotError::MetaMismatch(msg)) => {
            assert!(msg.contains("max_states"), "field named: {msg}")
        }
        other => panic!("expected a meta mismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn deadline_interrupt_then_file_resume_reaches_full_parity() {
    // The kill-and-resume CI job in miniature: a zero deadline expires with
    // the frontier non-empty, the engine takes a final snapshot on the way
    // out, and a fresh checker (no deadline) finishes the search from the
    // file with exact verdict and count parity.
    let p = SwapKSet::consensus(2, 2);
    let checker = ModelChecker::new(10, 10_000)
        .with_max_failures(1)
        .with_threads(env_threads());
    let baseline = checker.check(&p, &[0, 1]);
    assert!(baseline.passed(), "{baseline}");

    let path = temp_snapshot("deadline");
    let truncated = checker
        .with_deadline(Duration::ZERO)
        .check_with_snapshot_file(&p, &[0, 1], &path, usize::MAX)
        .expect("snapshot writes succeed");
    assert!(truncated.deadline_truncated, "{truncated}");
    assert!(truncated.states < baseline.states);
    let (_meta, _image) = read_snapshot(&path).expect("final deadline snapshot exists");

    let resumed = checker
        .resume_from_file(&p, &[0, 1], &path, usize::MAX)
        .expect("resume from the deadline snapshot");
    assert!(baseline.same_verdict(&resumed), "{baseline} vs {resumed}");
    assert_eq!(resumed.states, baseline.states);
    assert_eq!(resumed.terminal_states, baseline.terminal_states);
    assert!(!resumed.deadline_truncated && !resumed.paused);
    assert_eq!(resumed.complete, baseline.complete);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshot_files_are_written_atomically() {
    // write_snapshot goes through a .tmp sibling + rename; after a write
    // the tmp file must be gone and the target complete.
    let p = SwapKSet::consensus(2, 2);
    let checker = ModelChecker::new(8, 5_000).with_threads(env_threads());
    let path = temp_snapshot("atomic");
    let report = checker
        .check_with_snapshot_file(&p, &[0, 1], &path, 16)
        .unwrap();
    assert!(report.passed(), "{report}");
    assert!(path.exists(), "snapshot landed");
    assert!(
        !path.with_extension("tmp").exists(),
        "no tmp residue after an atomic write"
    );
    let (meta, image) = read_snapshot(&path).expect("file is a complete valid snapshot");
    assert_eq!(meta.inputs, vec![0, 1]);
    assert!(image.stats.states > 0);
    // Round-trip through the byte layer for good measure.
    let reparsed = from_snapshot_bytes(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(reparsed.0.protocol_name, meta.protocol_name);
    let _ = std::fs::remove_file(&path);
    // And write_snapshot is directly usable for hand-rolled clients.
    let path2 = temp_snapshot("direct");
    write_snapshot(&path2, &meta, &image).unwrap();
    assert!(read_snapshot(&path2).is_ok());
    let _ = std::fs::remove_file(&path2);
}
