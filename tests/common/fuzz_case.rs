//! Shared machinery for the threaded-fuzz harnesses: one sampled case of
//! the `ThreadedKSet` parameter space, with a stable single-line textual
//! form so failures persist as regression corpus entries.
//!
//! The corpus-line format is deliberately greppable and hand-editable:
//!
//! ```text
//! n=3 k=1 m=2 inputs=0,1,0 perturb=0x1b39fa04c2d11e07
//! n=3 k=1 m=2 inputs=0,1,0 perturb=0x1b39fa04c2d11e07 crashes=1@0,2@3
//! ```
//!
//! The optional `crashes` field injects crash failures: `pid@steps` stops
//! that thread dead after exactly `steps` swap operations
//! (`ThreadedKSet::propose_crashing`), leaving its stale entries behind for
//! the survivors — the threaded counterpart of the model checker's `Crash`
//! transition. At least one process always survives.
//!
//! When a fuzz test fails, its panic message carries the failing case in
//! exactly this form; appending that line to
//! `tests/corpus/threaded_fuzz.corpus` makes `tests/fuzz_regressions.rs`
//! replay it on every future run.

use std::collections::HashSet;
use std::sync::mpsc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swapcons::core::threaded::ThreadedKSet;

/// Generous ceiling per sampled race (they complete in milliseconds in
/// practice; the guard exists to convert livelock into failure).
pub const GUARD: Duration = Duration::from_secs(60);

/// Run `f` on a fresh thread, failing the test if it outlives [`GUARD`].
pub fn bounded<T: Send + 'static>(label: String, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        // A send error only means the receiver timed out and the test
        // already failed; nothing to do from this side.
        let _ = tx.send(f());
    });
    match rx.recv_timeout(GUARD) {
        Ok(v) => v,
        Err(_) => panic!("{label}: no decision within {GUARD:?} (livelock?)"),
    }
}

/// One sampled case: instance shape, inputs, the perturbation seed, and an
/// optional crash schedule (`(pid, crash_after_swaps)` per crashed thread).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    pub n: usize,
    pub k: usize,
    pub m: u64,
    pub inputs: Vec<u64>,
    pub perturb_seed: u64,
    pub crashes: Vec<(usize, u64)>,
}

impl FuzzCase {
    /// Sample a case from the given RNG: `2 ≤ n ≤ 8`, `1 ≤ k ≤ n`
    /// (including the `k = n` zero-object endpoint), `2 ≤ m ≤ 5`, inputs
    /// uniform over `{0, …, m-1}`.
    // Only the sampling harness (tests/threaded_fuzz.rs) calls this; the
    // corpus replayer includes this module too and would warn otherwise.
    #[allow(dead_code)]
    pub fn sample(rng: &mut StdRng) -> Self {
        let n = rng.gen_range(2..9);
        let k = rng.gen_range(1..n + 1);
        let m = rng.gen_range(2..6u64);
        let inputs = (0..n).map(|_| rng.gen_range(0..m)).collect();
        FuzzCase {
            n,
            k,
            m,
            inputs,
            perturb_seed: rng.gen_range(0..u64::MAX),
            crashes: Vec::new(),
        }
    }

    /// [`FuzzCase::sample`] plus a random crash schedule: between 1 and
    /// `n - 1` distinct threads crash (at least one always survives), each
    /// after 0–16 swap operations — covering crash-at-birth, mid-pass, and
    /// deep-in-the-race failure points.
    #[allow(dead_code)]
    pub fn sample_with_crashes(rng: &mut StdRng) -> Self {
        let mut case = Self::sample(rng);
        let crash_count = rng.gen_range(1..case.n);
        let mut pids: Vec<usize> = (0..case.n).collect();
        for i in 0..crash_count {
            let j = rng.gen_range(i..pids.len());
            pids.swap(i, j);
        }
        case.crashes = pids[..crash_count]
            .iter()
            .map(|&pid| (pid, rng.gen_range(0..17u64)))
            .collect();
        case.crashes.sort_unstable();
        case
    }

    /// The replayable one-line form: `n=.. k=.. m=.. inputs=a,b,c
    /// perturb=0x..`. [`FuzzCase::parse`] inverts it.
    pub fn corpus_line(&self) -> String {
        let inputs = self
            .inputs
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut line = format!(
            "n={} k={} m={} inputs={} perturb={:#x}",
            self.n, self.k, self.m, inputs, self.perturb_seed
        );
        if !self.crashes.is_empty() {
            let crashes = self
                .crashes
                .iter()
                .map(|(pid, steps)| format!("{pid}@{steps}"))
                .collect::<Vec<_>>()
                .join(",");
            line.push_str(&format!(" crashes={crashes}"));
        }
        line
    }

    /// Parse a corpus line produced by [`FuzzCase::corpus_line`].
    pub fn parse(line: &str) -> Result<FuzzCase, String> {
        let mut n = None;
        let mut k = None;
        let mut m = None;
        let mut inputs: Option<Vec<u64>> = None;
        let mut perturb = None;
        let mut crashes: Vec<(usize, u64)> = Vec::new();
        for field in line.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            match key {
                "n" => n = Some(value.parse().map_err(|e| format!("n: {e}"))?),
                "k" => k = Some(value.parse().map_err(|e| format!("k: {e}"))?),
                "m" => m = Some(value.parse().map_err(|e| format!("m: {e}"))?),
                "inputs" => {
                    inputs = Some(
                        value
                            .split(',')
                            .map(|v| v.parse().map_err(|e| format!("inputs: {e}")))
                            .collect::<Result<_, _>>()?,
                    )
                }
                "perturb" => {
                    let raw = value.strip_prefix("0x").unwrap_or(value);
                    perturb =
                        Some(u64::from_str_radix(raw, 16).map_err(|e| format!("perturb: {e}"))?)
                }
                "crashes" => {
                    crashes = value
                        .split(',')
                        .map(|entry| {
                            let (pid, steps) = entry
                                .split_once('@')
                                .ok_or_else(|| format!("crash entry {entry:?} is not pid@steps"))?;
                            Ok((
                                pid.parse().map_err(|e| format!("crash pid: {e}"))?,
                                steps.parse().map_err(|e| format!("crash steps: {e}"))?,
                            ))
                        })
                        .collect::<Result<_, String>>()?
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        let case = FuzzCase {
            n: n.ok_or("missing n")?,
            k: k.ok_or("missing k")?,
            m: m.ok_or("missing m")?,
            inputs: inputs.ok_or("missing inputs")?,
            perturb_seed: perturb.ok_or("missing perturb")?,
            crashes,
        };
        if case.inputs.len() != case.n {
            return Err(format!(
                "inputs count {} != n={}",
                case.inputs.len(),
                case.n
            ));
        }
        if case.k == 0 || case.n < case.k || case.inputs.iter().any(|&v| v >= case.m) {
            return Err("shape violates n >= k >= 1 or an input is out of range".into());
        }
        let crashed: HashSet<usize> = case.crashes.iter().map(|&(pid, _)| pid).collect();
        if crashed.len() != case.crashes.len() {
            return Err("duplicate pid in crashes".into());
        }
        if case.crashes.iter().any(|&(pid, _)| pid >= case.n) {
            return Err("crash pid out of range".into());
        }
        if case.crashes.len() >= case.n {
            return Err("crashes must leave at least one survivor".into());
        }
        Ok(case)
    }

    /// The crash point for `pid`, if it is scheduled to crash.
    fn crash_point(&self, pid: usize) -> Option<u64> {
        self.crashes
            .iter()
            .find(|&&(p, _)| p == pid)
            .map(|&(_, steps)| steps)
    }

    /// Run the race with per-thread yield perturbation: each thread spins
    /// and yields a seeded-random amount before proposing, skewing thread
    /// start order and pacing so different seeds exercise genuinely
    /// different OS interleavings (the threaded model's only scheduler).
    /// Threads in the crash schedule stop dead at their crash point
    /// (`propose_crashing`); `None` in the result marks a crashed,
    /// undecided thread.
    pub fn run(&self) -> Vec<Option<u64>> {
        let alg = ThreadedKSet::new(self.n, self.k, self.m);
        let perturb_seed = self.perturb_seed;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .inputs
                .iter()
                .enumerate()
                .map(|(pid, &input)| {
                    let alg = &alg;
                    let crash = self.crash_point(pid);
                    scope.spawn(move || {
                        let mut rng =
                            StdRng::seed_from_u64(perturb_seed ^ (pid as u64).wrapping_mul(0x9E37));
                        for _ in 0..rng.gen_range(0..64u32) {
                            std::hint::spin_loop();
                        }
                        let yields = rng.gen_range(0..4u32);
                        for _ in 0..yields {
                            std::thread::yield_now();
                        }
                        match crash {
                            Some(steps) => alg.propose_crashing(pid, input, steps),
                            None => Some(alg.propose(pid, input)),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("proposer panicked"))
                .collect()
        })
    }

    /// k-agreement and validity over the decided processes, plus the
    /// progress claim: every thread outside the crash schedule must have
    /// decided (crashed threads may decide or not, depending on whether the
    /// crash point fell after the race was already won). Failure messages
    /// embed the corpus line so the case can be committed to
    /// `tests/corpus/threaded_fuzz.corpus` verbatim.
    pub fn check(&self, decisions: &[Option<u64>]) {
        let replay = self.corpus_line();
        assert_eq!(
            decisions.len(),
            self.n,
            "decision count mismatch — corpus line: {replay}"
        );
        for (pid, d) in decisions.iter().enumerate() {
            assert!(
                d.is_some() || self.crash_point(pid).is_some(),
                "survivor p{pid} did not decide — corpus line: {replay}"
            );
        }
        let decided: Vec<u64> = decisions.iter().flatten().copied().collect();
        let distinct: HashSet<u64> = decided.iter().copied().collect();
        assert!(
            distinct.len() <= self.k,
            "k-agreement violated: {distinct:?} exceeds k={} — corpus line: {replay}",
            self.k
        );
        for d in &decided {
            assert!(
                self.inputs.contains(d),
                "validity violated: decision {d} is nobody's input — corpus line: {replay}"
            );
        }
    }
}
