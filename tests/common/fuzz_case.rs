//! Shared machinery for the threaded-fuzz harnesses: one sampled case of
//! the `ThreadedKSet` parameter space, with a stable single-line textual
//! form so failures persist as regression corpus entries.
//!
//! The corpus-line format is deliberately greppable and hand-editable:
//!
//! ```text
//! n=3 k=1 m=2 inputs=0,1,0 perturb=0x1b39fa04c2d11e07
//! ```
//!
//! When a fuzz test fails, its panic message carries the failing case in
//! exactly this form; appending that line to
//! `tests/corpus/threaded_fuzz.corpus` makes `tests/fuzz_regressions.rs`
//! replay it on every future run.

use std::collections::HashSet;
use std::sync::mpsc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swapcons::core::threaded::ThreadedKSet;

/// Generous ceiling per sampled race (they complete in milliseconds in
/// practice; the guard exists to convert livelock into failure).
pub const GUARD: Duration = Duration::from_secs(60);

/// Run `f` on a fresh thread, failing the test if it outlives [`GUARD`].
pub fn bounded<T: Send + 'static>(label: String, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        // A send error only means the receiver timed out and the test
        // already failed; nothing to do from this side.
        let _ = tx.send(f());
    });
    match rx.recv_timeout(GUARD) {
        Ok(v) => v,
        Err(_) => panic!("{label}: no decision within {GUARD:?} (livelock?)"),
    }
}

/// One sampled case: instance shape, inputs, and the perturbation seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    pub n: usize,
    pub k: usize,
    pub m: u64,
    pub inputs: Vec<u64>,
    pub perturb_seed: u64,
}

impl FuzzCase {
    /// Sample a case from the given RNG: `2 ≤ n ≤ 8`, `1 ≤ k ≤ n`
    /// (including the `k = n` zero-object endpoint), `2 ≤ m ≤ 5`, inputs
    /// uniform over `{0, …, m-1}`.
    // Only the sampling harness (tests/threaded_fuzz.rs) calls this; the
    // corpus replayer includes this module too and would warn otherwise.
    #[allow(dead_code)]
    pub fn sample(rng: &mut StdRng) -> Self {
        let n = rng.gen_range(2..9);
        let k = rng.gen_range(1..n + 1);
        let m = rng.gen_range(2..6u64);
        let inputs = (0..n).map(|_| rng.gen_range(0..m)).collect();
        FuzzCase {
            n,
            k,
            m,
            inputs,
            perturb_seed: rng.gen_range(0..u64::MAX),
        }
    }

    /// The replayable one-line form: `n=.. k=.. m=.. inputs=a,b,c
    /// perturb=0x..`. [`FuzzCase::parse`] inverts it.
    pub fn corpus_line(&self) -> String {
        let inputs = self
            .inputs
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "n={} k={} m={} inputs={} perturb={:#x}",
            self.n, self.k, self.m, inputs, self.perturb_seed
        )
    }

    /// Parse a corpus line produced by [`FuzzCase::corpus_line`].
    pub fn parse(line: &str) -> Result<FuzzCase, String> {
        let mut n = None;
        let mut k = None;
        let mut m = None;
        let mut inputs: Option<Vec<u64>> = None;
        let mut perturb = None;
        for field in line.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("field {field:?} is not key=value"))?;
            match key {
                "n" => n = Some(value.parse().map_err(|e| format!("n: {e}"))?),
                "k" => k = Some(value.parse().map_err(|e| format!("k: {e}"))?),
                "m" => m = Some(value.parse().map_err(|e| format!("m: {e}"))?),
                "inputs" => {
                    inputs = Some(
                        value
                            .split(',')
                            .map(|v| v.parse().map_err(|e| format!("inputs: {e}")))
                            .collect::<Result<_, _>>()?,
                    )
                }
                "perturb" => {
                    let raw = value.strip_prefix("0x").unwrap_or(value);
                    perturb =
                        Some(u64::from_str_radix(raw, 16).map_err(|e| format!("perturb: {e}"))?)
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        let case = FuzzCase {
            n: n.ok_or("missing n")?,
            k: k.ok_or("missing k")?,
            m: m.ok_or("missing m")?,
            inputs: inputs.ok_or("missing inputs")?,
            perturb_seed: perturb.ok_or("missing perturb")?,
        };
        if case.inputs.len() != case.n {
            return Err(format!(
                "inputs count {} != n={}",
                case.inputs.len(),
                case.n
            ));
        }
        if case.k == 0 || case.n < case.k || case.inputs.iter().any(|&v| v >= case.m) {
            return Err("shape violates n >= k >= 1 or an input is out of range".into());
        }
        Ok(case)
    }

    /// Run the race with per-thread yield perturbation: each thread spins
    /// and yields a seeded-random amount before proposing, skewing thread
    /// start order and pacing so different seeds exercise genuinely
    /// different OS interleavings (the threaded model's only scheduler).
    pub fn run(&self) -> Vec<u64> {
        let alg = ThreadedKSet::new(self.n, self.k, self.m);
        let perturb_seed = self.perturb_seed;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .inputs
                .iter()
                .enumerate()
                .map(|(pid, &input)| {
                    let alg = &alg;
                    scope.spawn(move || {
                        let mut rng =
                            StdRng::seed_from_u64(perturb_seed ^ (pid as u64).wrapping_mul(0x9E37));
                        for _ in 0..rng.gen_range(0..64u32) {
                            std::hint::spin_loop();
                        }
                        let yields = rng.gen_range(0..4u32);
                        for _ in 0..yields {
                            std::thread::yield_now();
                        }
                        alg.propose(pid, input)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("proposer panicked"))
                .collect()
        })
    }

    /// k-agreement and validity for this case's decisions. Failure messages
    /// embed the corpus line so the case can be committed to
    /// `tests/corpus/threaded_fuzz.corpus` verbatim.
    pub fn check(&self, decisions: &[u64]) {
        let replay = self.corpus_line();
        assert_eq!(
            decisions.len(),
            self.n,
            "decision count mismatch — corpus line: {replay}"
        );
        let distinct: HashSet<u64> = decisions.iter().copied().collect();
        assert!(
            distinct.len() <= self.k,
            "k-agreement violated: {distinct:?} exceeds k={} — corpus line: {replay}",
            self.k
        );
        for d in decisions {
            assert!(
                self.inputs.contains(d),
                "validity violated: decision {d} is nobody's input — corpus line: {replay}"
            );
        }
    }
}
