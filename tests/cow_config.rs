//! Copy-on-write `Configuration` correctness: under arbitrary interleaved
//! step / clone / poke sequences across a pool of aliased clones, every
//! lineage must be observationally identical to an independently rebuilt
//! (deep, never-aliased) copy — i.e. aliasing is invisible.
//!
//! The pool starts with one initial configuration; operations either step a
//! pool member, clone one (extending the pool, sharing storage), or poke an
//! object value. Each member carries the action history of its lineage;
//! after the sequence, replaying that history from a fresh initial
//! configuration must reproduce the member exactly (equality and
//! fingerprint). Any copy-on-write leak — a mutation through a shared `Arc`
//! becoming visible to a sibling, or a detach that failed to happen — makes
//! some lineage diverge from its replay.

use proptest::prelude::*;
use swapcons::core::lap::SwapEntry;
use swapcons::core::SwapKSet;
use swapcons::sim::{Configuration, ObjectId, ProcessId};

const N: usize = 3;
const M: u64 = 2;
const INPUTS: [u64; 3] = [0, 1, 1];

/// One operation of the interleaved workload. Indices are taken modulo the
/// current pool/process/object counts, so any generated sequence is valid.
#[derive(Clone, Debug)]
enum Op {
    /// Step pool member `target` by process `pid % n` (no-op if decided).
    Step { target: usize, pid: usize },
    /// Push a clone of pool member `target`.
    Clone { target: usize },
    /// Poke object `obj % space` of pool member `target` with a marker
    /// value derived from `salt`.
    Poke {
        target: usize,
        obj: usize,
        salt: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, 0usize..N).prop_map(|(target, pid)| Op::Step { target, pid }),
        (0usize..64).prop_map(|target| Op::Clone { target }),
        (0usize..64, 0usize..4, 0u64..50).prop_map(|(target, obj, salt)| Op::Poke {
            target,
            obj,
            salt
        }),
    ]
}

/// The action actually applied to a lineage (resolved indices).
#[derive(Clone, Debug)]
enum Applied {
    Step(ProcessId),
    Poke(ObjectId, SwapEntry),
}

fn marker_entry(salt: u64) -> SwapEntry {
    // A poked entry distinct from anything the protocol writes naturally:
    // laps far above reachable values keyed by the salt.
    let mut laps = swapcons::core::lap::LapVec::zeros(M as usize);
    laps.set((salt % M) as usize, 1_000 + salt);
    SwapEntry::of(laps, ProcessId((salt % N as u64) as usize))
}

fn rebuild(protocol: &SwapKSet, history: &[Applied]) -> Configuration<SwapKSet> {
    let mut c = Configuration::initial(protocol, &INPUTS).expect("valid inputs");
    for action in history {
        match action {
            Applied::Step(pid) => {
                // Mirrors the workload: steps of decided processes are
                // skipped at application time, so none appear in histories.
                c.step(protocol, *pid).expect("replayed step must succeed");
            }
            Applied::Poke(obj, value) => c.poke_object(*obj, value.clone()),
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cow_lineages_match_deep_replays(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let protocol = SwapKSet::consensus(N, M);
        let initial = Configuration::initial(&protocol, &INPUTS).expect("valid inputs");
        // Pool of (configuration, lineage history).
        let mut pool: Vec<(Configuration<SwapKSet>, Vec<Applied>)> = vec![(initial, Vec::new())];
        for op in &ops {
            match *op {
                Op::Step { target, pid } => {
                    let t = target % pool.len();
                    let pid = ProcessId(pid % N);
                    let (config, history) = &mut pool[t];
                    if config.decision(pid).is_none() {
                        config.step(&protocol, pid).expect("running process steps");
                        history.push(Applied::Step(pid));
                    }
                }
                Op::Clone { target } => {
                    let t = target % pool.len();
                    let cloned = (pool[t].0.clone(), pool[t].1.clone());
                    // A fresh clone shares storage with its origin...
                    prop_assert!(cloned.0.shares_object_storage(&pool[t].0));
                    prop_assert!(cloned.0.shares_process_storage(&pool[t].0));
                    // ...and is equal to it.
                    prop_assert_eq!(&cloned.0, &pool[t].0);
                    pool.push(cloned);
                }
                Op::Poke { target, obj, salt } => {
                    let t = target % pool.len();
                    let obj = ObjectId(obj % protocol.space());
                    let value = marker_entry(salt);
                    let (config, history) = &mut pool[t];
                    config.poke_object(obj, value.clone());
                    history.push(Applied::Poke(obj, value));
                }
            }
        }
        // Every lineage must equal its deep, aliasing-free replay.
        for (config, history) in &pool {
            let deep = rebuild(&protocol, history);
            prop_assert_eq!(
                config, &deep,
                "copy-on-write lineage diverged from deep replay; history: {:?}",
                history
            );
            prop_assert_eq!(config.fingerprint(), deep.fingerprint());
            prop_assert!(!config.shares_object_storage(&deep) || history.is_empty() || config.object_values() == deep.object_values());
        }
    }
}
