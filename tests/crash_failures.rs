//! Integration: crash failures, and the wait-free / obstruction-free
//! distinction the paper's progress conditions draw.
//!
//! * The **pairs construction is wait-free**: every non-crashed process
//!   decides within its own steps no matter who crashes (this is what makes
//!   it a wait-free k-set agreement algorithm, Section 1).
//! * **Algorithm 1 is obstruction-free but not wait-free**: after crashes,
//!   survivors still decide once they run alone (crashed processes are just
//!   infinitely slow), and the paper's FLP-style background means no
//!   deterministic algorithm from these objects could do better.
//! * The **2-process consensus from one swap object is wait-free**: a
//!   process decides in exactly one step even if its peer crashed.

use swapcons::core::pairs::PairsKSet;
use swapcons::core::SwapKSet;
use swapcons::sim::explore::{ModelChecker, ViolationKind};
use swapcons::sim::scheduler::CrashingRandom;
use swapcons::sim::testing::TwoProcessSwapConsensus;
use swapcons::sim::{runner, Action, Configuration, ProcessId, Protocol};

#[test]
fn two_process_consensus_survives_peer_crash() {
    // p1 crashes before taking any step; p0 decides alone in one step.
    let p = TwoProcessSwapConsensus;
    let mut c = Configuration::initial(&p, &[4, 9]).unwrap();
    let out = runner::solo_run(&p, &mut c, ProcessId(0), 2).unwrap();
    assert_eq!(out.decision, 4);
    assert_eq!(out.steps, 1, "wait-free: one swap suffices");
}

#[test]
fn pairs_every_survivor_decides_despite_crashes() {
    // Crash one member of each pair immediately; all survivors decide
    // within one own step under any schedule.
    let p = PairsKSet::new(6, 3, 4);
    let inputs = [0u64, 1, 2, 3, 0, 1];
    for seed in 0..10 {
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        let crashes = vec![(ProcessId(0), 0), (ProcessId(2), 0), (ProcessId(4), 0)];
        let mut sched = CrashingRandom::new(crashes, seed);
        runner::run(&p, &mut c, &mut sched, 100).unwrap();
        // Survivors p1, p3, p5 all decided (their own inputs: partners dead).
        for pid in [1usize, 3, 5] {
            assert_eq!(
                c.decision(ProcessId(pid)),
                Some(inputs[pid]),
                "survivor p{pid} decides its own input when its partner crashed first"
            );
        }
        assert!(p.task().check_validity(&inputs, &c.decisions()).is_ok());
    }
}

#[test]
fn algorithm1_survivors_decide_after_crashes() {
    // Crash all but one process mid-race; the survivor, now effectively
    // solo, decides within Lemma 8's bound.
    let p = SwapKSet::consensus(5, 2);
    let inputs = [0u64, 1, 0, 1, 0];
    for seed in 0..10 {
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        let crashes: Vec<(ProcessId, usize)> = (1..5).map(|i| (ProcessId(i), 20)).collect();
        let mut sched = CrashingRandom::new(crashes, seed);
        // Random 5-process contention for 20 steps, then p0 alone.
        let out = runner::run(&p, &mut c, &mut sched, 20 + p.solo_step_bound()).unwrap();
        // p0 must have decided (it is the only scheduled process after
        // step 20, and Lemma 8 bounds its solo run).
        assert!(
            c.decision(ProcessId(0)).is_some(),
            "seed {seed}: survivor did not decide; steps = {}",
            out.steps
        );
        assert!(p.task().check(&inputs, &c.decisions()).is_ok());
    }
}

#[test]
fn algorithm1_is_not_wait_free_under_lockstep() {
    // Companion fact: without the crash (= solo suffix), a perfect duel
    // starves everyone — obstruction-freedom's weakness, by design.
    let p = SwapKSet::consensus(2, 2);
    let mut c = Configuration::initial(&p, &[0, 1]).unwrap();
    let out = runner::run(
        &p,
        &mut c,
        &mut swapcons::sim::scheduler::RoundRobin::new(),
        1_000,
    )
    .unwrap();
    assert!(!out.all_decided);
}

// ---------------------------------------------------------------------------
// Exhaustive crash-adversary gates: the randomized tests above sample crash
// schedules; the model checker's `max_failures` budget enumerates every
// crash pattern up to `f` failures, and `wait_free_bound` checks the
// progress claims against the full (stepping + crashing) adversary.
// ---------------------------------------------------------------------------

#[test]
fn gate_two_process_consensus_is_wait_free_all_crash_patterns() {
    // One swap object solves 2-process consensus wait-free: every process
    // decides within ONE own step under every schedule and every crash
    // pattern with at most f = n - 1 = 1 failure. Exhaustive over the
    // crash-extended state space.
    let p = TwoProcessSwapConsensus;
    let report = ModelChecker::new(12, 100_000)
        .with_max_failures(1)
        .with_solo_budget(1)
        .with_wait_free_bound(1)
        .check(&p, &[0, 1]);
    assert!(report.proves_safety(), "{report}");
}

#[test]
fn gate_pairs_is_wait_free_all_crash_patterns() {
    // The pairs construction is wait-free with own-step bound 1: each
    // process swaps into its pair object once and decides on the response.
    // Exhaustively verified for n = 4, k = 2 under every crash pattern with
    // up to f = n - 1 = 3 failures.
    let p = PairsKSet::new(4, 2, 3);
    let report = ModelChecker::new(20, 500_000)
        .with_max_failures(3)
        .with_solo_budget(p.step_bound())
        .with_wait_free_bound(p.step_bound())
        .check(&p, &[0, 1, 2, 0]);
    assert!(report.proves_safety(), "{report}");

    // And across every input vector (safety + progress per vector).
    let all = ModelChecker::new(20, 500_000)
        .with_max_failures(3)
        .with_wait_free_bound(p.step_bound())
        .with_symmetry_reduction()
        .check_all_inputs(&p);
    assert!(all.proves_safety(), "{all}");
}

#[test]
fn gate_algorithm1_is_not_wait_free_pinned_counterexample() {
    // Algorithm 1 is obstruction-free (Lemma 8: solo bound 8(n-k)) but NOT
    // wait-free — the engine's BFS over the crash-extended adversary finds
    // and we pin the minimal starvation schedule: p1 interferes exactly
    // twice, each swap resetting p0's race, and p0 burns through its full
    // solo budget of 8 own steps without deciding. 10 actions total, no
    // crash needed (a crash only removes contention, so it can never help
    // the adversary starve anyone).
    let p = SwapKSet::consensus(2, 2);
    let bound = p.solo_step_bound();
    assert_eq!(bound, 8, "Lemma 8 bound for n = 2, k = 1");
    let report = ModelChecker::new(40, 500_000)
        .with_max_failures(1)
        .with_wait_free_bound(bound)
        .check(&p, &[0, 1]);
    assert!(!report.passed(), "{report}");
    let v = report.violation.expect("wait-freedom violation");
    match v.kind {
        ViolationKind::WaitFree { pid, bound: b } => {
            assert_eq!((pid, b), (ProcessId(0), bound));
        }
        ref other => panic!("expected a wait-freedom violation, got {other}"),
    }
    // Pin the minimal witness exactly.
    assert_eq!(
        v.schedule.len(),
        10,
        "minimal counterexample: {:?}",
        v.schedule
    );
    let own_steps = v
        .schedule
        .iter()
        .filter(|a| **a == Action::Step(ProcessId(0)))
        .count();
    assert_eq!(own_steps, 8, "p0 spends its whole bound: {:?}", v.schedule);
    assert!(
        v.schedule.iter().all(|a| !a.is_crash()),
        "crashes cannot help starvation: {:?}",
        v.schedule
    );
    // The witness replays: after it, p0 has taken `bound` undecided steps.
    let mut c = Configuration::initial(&p, &[0, 1]).unwrap();
    runner::replay_actions(&p, &mut c, &v.schedule).unwrap();
    assert_eq!(c.decision(ProcessId(0)), None, "p0 genuinely starved");
}

#[test]
fn gate_crash_exploration_reduced_vs_full_verdict_parity() {
    // Symmetry reduction composes with crash injection: renamings must map
    // crashed sets to crashed sets, and the quotient search reaches the
    // same verdict over strictly fewer states.
    let p = PairsKSet::new(4, 2, 3);
    let full = ModelChecker::new(20, 500_000)
        .with_max_failures(2)
        .with_solo_budget(p.step_bound())
        .check(&p, &[0, 1, 2, 0]);
    let reduced = ModelChecker::new(20, 500_000)
        .with_max_failures(2)
        .with_solo_budget(p.step_bound())
        .with_symmetry_reduction()
        .check(&p, &[0, 1, 2, 0]);
    assert!(full.same_verdict(&reduced), "{full} vs {reduced}");
    assert!(full.proves_safety() && reduced.proves_safety());
    assert!(
        reduced.states < full.states,
        "crash-aware reduction must still shrink the space: {} vs {}",
        reduced.states,
        full.states
    );
}

#[test]
fn gate_algorithm1_safety_holds_under_all_crash_patterns() {
    // Crashes never break Algorithm 1's safety (agreement + validity) —
    // bounded-exhaustive over the crash-extended space (racing makes the
    // full space infinite; depth-bounded like the failure-free safety
    // tests).
    let p = SwapKSet::consensus(3, 2);
    let report = ModelChecker::new(12, 200_000)
        .with_max_failures(2)
        .with_symmetry_reduction()
        .check(&p, &[0, 1, 0]);
    assert!(report.passed(), "{report}");
}

#[test]
fn crashed_majority_cannot_block_pairs_outsiders() {
    // The 2k-n unpaired processes decide at initialization; crashes cannot
    // touch them at all.
    let p = PairsKSet::new(5, 3, 4);
    let c = Configuration::initial(&p, &[0, 1, 2, 3, 1]).unwrap();
    assert_eq!(c.decision(ProcessId(4)), Some(1));
}
