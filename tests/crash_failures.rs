//! Integration: crash failures, and the wait-free / obstruction-free
//! distinction the paper's progress conditions draw.
//!
//! * The **pairs construction is wait-free**: every non-crashed process
//!   decides within its own steps no matter who crashes (this is what makes
//!   it a wait-free k-set agreement algorithm, Section 1).
//! * **Algorithm 1 is obstruction-free but not wait-free**: after crashes,
//!   survivors still decide once they run alone (crashed processes are just
//!   infinitely slow), and the paper's FLP-style background means no
//!   deterministic algorithm from these objects could do better.
//! * The **2-process consensus from one swap object is wait-free**: a
//!   process decides in exactly one step even if its peer crashed.

use swapcons::core::pairs::PairsKSet;
use swapcons::core::SwapKSet;
use swapcons::sim::scheduler::CrashingRandom;
use swapcons::sim::testing::TwoProcessSwapConsensus;
use swapcons::sim::{runner, Configuration, ProcessId, Protocol};

#[test]
fn two_process_consensus_survives_peer_crash() {
    // p1 crashes before taking any step; p0 decides alone in one step.
    let p = TwoProcessSwapConsensus;
    let mut c = Configuration::initial(&p, &[4, 9]).unwrap();
    let out = runner::solo_run(&p, &mut c, ProcessId(0), 2).unwrap();
    assert_eq!(out.decision, 4);
    assert_eq!(out.steps, 1, "wait-free: one swap suffices");
}

#[test]
fn pairs_every_survivor_decides_despite_crashes() {
    // Crash one member of each pair immediately; all survivors decide
    // within one own step under any schedule.
    let p = PairsKSet::new(6, 3, 4);
    let inputs = [0u64, 1, 2, 3, 0, 1];
    for seed in 0..10 {
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        let crashes = vec![(ProcessId(0), 0), (ProcessId(2), 0), (ProcessId(4), 0)];
        let mut sched = CrashingRandom::new(crashes, seed);
        runner::run(&p, &mut c, &mut sched, 100).unwrap();
        // Survivors p1, p3, p5 all decided (their own inputs: partners dead).
        for pid in [1usize, 3, 5] {
            assert_eq!(
                c.decision(ProcessId(pid)),
                Some(inputs[pid]),
                "survivor p{pid} decides its own input when its partner crashed first"
            );
        }
        assert!(p.task().check_validity(&inputs, &c.decisions()).is_ok());
    }
}

#[test]
fn algorithm1_survivors_decide_after_crashes() {
    // Crash all but one process mid-race; the survivor, now effectively
    // solo, decides within Lemma 8's bound.
    let p = SwapKSet::consensus(5, 2);
    let inputs = [0u64, 1, 0, 1, 0];
    for seed in 0..10 {
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        let crashes: Vec<(ProcessId, usize)> = (1..5).map(|i| (ProcessId(i), 20)).collect();
        let mut sched = CrashingRandom::new(crashes, seed);
        // Random 5-process contention for 20 steps, then p0 alone.
        let out = runner::run(&p, &mut c, &mut sched, 20 + p.solo_step_bound()).unwrap();
        // p0 must have decided (it is the only scheduled process after
        // step 20, and Lemma 8 bounds its solo run).
        assert!(
            c.decision(ProcessId(0)).is_some(),
            "seed {seed}: survivor did not decide; steps = {}",
            out.steps
        );
        assert!(p.task().check(&inputs, &c.decisions()).is_ok());
    }
}

#[test]
fn algorithm1_is_not_wait_free_under_lockstep() {
    // Companion fact: without the crash (= solo suffix), a perfect duel
    // starves everyone — obstruction-freedom's weakness, by design.
    let p = SwapKSet::consensus(2, 2);
    let mut c = Configuration::initial(&p, &[0, 1]).unwrap();
    let out = runner::run(
        &p,
        &mut c,
        &mut swapcons::sim::scheduler::RoundRobin::new(),
        1_000,
    )
    .unwrap();
    assert!(!out.all_decided);
}

#[test]
fn crashed_majority_cannot_block_pairs_outsiders() {
    // The 2k-n unpaired processes decide at initialization; crashes cannot
    // touch them at all.
    let p = PairsKSet::new(5, 3, 4);
    let c = Configuration::initial(&p, &[0, 1, 2, 3, 1]).unwrap();
    assert_eq!(c.decision(ProcessId(4)), Some(1));
}
