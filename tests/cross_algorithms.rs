//! Integration: every algorithm in the workspace driven through the same
//! schedule harness, with the task predicates checked end to end.

use swapcons::baselines::{BinaryRacing, CommitAdoptConsensus, ReadableRacing, RegisterKSet};
use swapcons::core::pairs::PairsKSet;
use swapcons::core::SwapKSet;
use swapcons::sim::scheduler::SeededRandom;
use swapcons::sim::{runner, Configuration, Protocol};

/// Contention then sequential solo finishes; returns decisions.
fn drive<P: Protocol>(
    protocol: &P,
    inputs: &[u64],
    contention: usize,
    seed: u64,
    solo_budget: usize,
) -> Vec<Option<u64>> {
    let mut config = Configuration::initial(protocol, inputs).unwrap();
    runner::run(
        protocol,
        &mut config,
        &mut SeededRandom::new(seed),
        contention,
    )
    .unwrap();
    for pid in config.running() {
        runner::solo_run(protocol, &mut config, pid, solo_budget)
            .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
    }
    assert!(config.all_decided());
    config.decisions()
}

#[test]
fn algorithm1_against_every_schedule_seed() {
    for seed in 0..30 {
        let p = SwapKSet::new(6, 2, 3);
        let inputs = [0, 1, 2, 0, 1, 2];
        let decisions = drive(&p, &inputs, 80, seed, p.solo_step_bound());
        p.task().check(&inputs, &decisions).unwrap();
    }
}

#[test]
fn all_consensus_algorithms_agree_under_the_same_seeds() {
    for seed in 0..10 {
        let n = 4;
        let inputs = [0u64, 1, 1, 0];

        let alg1 = SwapKSet::consensus(n, 2);
        let d1 = drive(&alg1, &inputs, 40, seed, alg1.solo_step_bound());
        assert_eq!(distinct(&d1), 1, "Algorithm 1, seed {seed}");

        let ca = CommitAdoptConsensus::new(n, 2);
        let d2 = drive(&ca, &inputs, 40, seed, ca.solo_step_bound());
        assert_eq!(distinct(&d2), 1, "commit-adopt, seed {seed}");

        let rr = ReadableRacing::new(n, 2);
        let d3 = drive(&rr, &inputs, 40, seed, rr.solo_step_bound());
        assert_eq!(distinct(&d3), 1, "readable racing, seed {seed}");

        let br = BinaryRacing::new(n);
        let d4 = drive(&br, &inputs, 40, seed, br.solo_step_bound());
        assert_eq!(distinct(&d4), 1, "binary racing, seed {seed}");
    }
}

fn distinct(decisions: &[Option<u64>]) -> usize {
    decisions
        .iter()
        .flatten()
        .collect::<std::collections::HashSet<_>>()
        .len()
}

#[test]
fn kset_algorithms_respect_degree_across_k() {
    for k in 2..=5usize {
        let n = 2 * k;
        let m = (k + 1) as u64;
        let inputs: Vec<u64> = (0..n).map(|i| (i as u64) % m).collect();

        let alg1 = SwapKSet::new(n, k, m);
        let d = drive(&alg1, &inputs, 10 * n, 1, alg1.solo_step_bound());
        alg1.task().check(&inputs, &d).unwrap();

        let pairs = PairsKSet::new(n, k, m);
        let d = drive(&pairs, &inputs, 10 * n, 1, 1);
        pairs.task().check(&inputs, &d).unwrap();

        let regs = RegisterKSet::new(n, k, m);
        let d = drive(&regs, &inputs, 10 * n, 1, regs.solo_step_bound());
        regs.task().check(&inputs, &d).unwrap();
    }
}

#[test]
fn unanimous_inputs_force_that_decision_everywhere() {
    // Validity pinned down: with all-equal inputs, every algorithm must
    // decide exactly that input.
    let inputs = [1u64, 1, 1, 1];
    let n = 4;

    let alg1 = SwapKSet::consensus(n, 2);
    assert_eq!(
        drive(&alg1, &inputs, 30, 9, alg1.solo_step_bound()),
        vec![Some(1); n]
    );

    let ca = CommitAdoptConsensus::new(n, 2);
    assert_eq!(
        drive(&ca, &inputs, 30, 9, ca.solo_step_bound()),
        vec![Some(1); n]
    );

    let rr = ReadableRacing::new(n, 2);
    assert_eq!(
        drive(&rr, &inputs, 30, 9, rr.solo_step_bound()),
        vec![Some(1); n]
    );

    let br = BinaryRacing::new(n);
    assert_eq!(
        drive(&br, &inputs, 30, 9, br.solo_step_bound()),
        vec![Some(1); n]
    );
}

#[test]
fn space_accounting_matches_table1_claims() {
    // The objects each algorithm allocates are exactly what Table 1 reports.
    assert_eq!(SwapKSet::consensus(9, 2).num_objects(), 8); // n-1
    assert_eq!(SwapKSet::new(9, 4, 5).num_objects(), 5); // n-k
    assert_eq!(PairsKSet::new(8, 5, 6).num_objects(), 3); // n-k
    assert_eq!(CommitAdoptConsensus::new(9, 2).num_objects(), 18); // 2n
    assert_eq!(RegisterKSet::new(9, 4, 5).num_objects(), 12); // 2(n-k+1)
    assert_eq!(ReadableRacing::new(9, 2).num_objects(), 8); // n-1
}

#[test]
fn histories_use_only_declared_operation_kinds() {
    use swapcons::objects::OpKind;
    // Swap-only algorithms never read; register algorithms never swap.
    let p = SwapKSet::consensus(3, 2);
    let mut c = Configuration::initial(&p, &[0, 1, 1]).unwrap();
    let out = runner::run(&p, &mut c, &mut SeededRandom::new(4), 100).unwrap();
    assert!(out.history.iter().all(|s| s.op.kind() == OpKind::Swap));

    let p = CommitAdoptConsensus::new(3, 2);
    let mut c = Configuration::initial(&p, &[0, 1, 1]).unwrap();
    let out = runner::run(&p, &mut c, &mut SeededRandom::new(4), 100).unwrap();
    assert!(out
        .history
        .iter()
        .all(|s| matches!(s.op.kind(), OpKind::Read | OpKind::Write)));
}
