//! Edge-of-parameter-space coverage for the threaded Algorithm 1:
//! `k = n` (trivial agreement from zero swap objects) and `k = 1`
//! (full consensus), the two endpoints of the paper's `n-k` space bound.
//!
//! The `k = 1` races run under a wall-clock guard: obstruction-freedom gives
//! no deterministic termination bound under contention, so a livelock
//! regression would otherwise hang the suite instead of failing it.

// Free-running std threads drive these tests; under `--cfg conc_check` the
// atomic objects route through the model-only conc shims, so this target is
// compiled out (the exhaustive conc suites cover the same layer there).
#![cfg(not(conc_check))]

use std::collections::HashSet;
use std::sync::mpsc;
use std::time::Duration;

use swapcons::core::threaded::ThreadedKSet;

/// Generous ceiling for races that complete in milliseconds in practice.
const GUARD: Duration = Duration::from_secs(60);

/// Run `f` on a fresh thread, failing the test if it outlives `GUARD`.
fn bounded<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        // A send error only means the receiver timed out and the test
        // already failed; nothing to do from this side.
        let _ = tx.send(f());
    });
    match rx.recv_timeout(GUARD) {
        Ok(v) => v,
        Err(_) => panic!("{label}: no decision within {GUARD:?} (livelock?)"),
    }
}

#[test]
fn k_equals_n_uses_zero_swap_objects() {
    let alg = ThreadedKSet::new(5, 5, 3);
    assert_eq!(alg.space(), 0, "n-k = 0 objects");
    assert_eq!(alg.num_processes(), 5);
    assert_eq!(alg.degree(), 5);
}

#[test]
fn k_equals_n_every_process_decides_its_own_input() {
    // With no objects there is no communication: validity pins each decision
    // to the proposer's own input, and n distinct decisions are allowed
    // because k = n.
    let inputs = [0u64, 1, 2, 0, 1, 2];
    let alg = ThreadedKSet::new(6, 6, 3);
    let decisions = bounded("k=n race", move || alg.run(&inputs));
    assert_eq!(decisions, inputs.to_vec());
}

#[test]
fn k_equals_n_single_process_instance() {
    // The smallest instance the relaxed precondition admits: n = k = 1.
    let alg = ThreadedKSet::new(1, 1, 4);
    assert_eq!(alg.space(), 0);
    assert_eq!(alg.propose(0, 3), 3);
}

#[test]
fn k_equals_n_bounded_propose_needs_no_extra_laps() {
    // Zero objects means zero conflicts: two laps (build a 2-lap lead)
    // always suffice.
    let alg = ThreadedKSet::new(4, 4, 2);
    assert_eq!(alg.propose_bounded(2, 1, 3), Some(1));
}

#[test]
fn k_one_consensus_under_contention_with_time_guard() {
    for round in 0..5u64 {
        let decisions = bounded("k=1 consensus race", move || {
            let alg = ThreadedKSet::new(5, 1, 3);
            assert_eq!(alg.space(), 4, "n-k = 4 objects");
            let inputs: Vec<u64> = (0..5).map(|i| (i + round) % 3).collect();
            (inputs.clone(), alg.run(&inputs))
        });
        let (inputs, decisions) = decisions;
        let distinct: HashSet<u64> = decisions.iter().copied().collect();
        assert_eq!(distinct.len(), 1, "consensus: one decided value");
        let v = *distinct.iter().next().unwrap();
        assert!(inputs.contains(&v), "validity: {v} is someone's input");
    }
}

#[test]
fn k_one_two_processes_minimal_consensus() {
    // The n = 2, k = 1 instance: one swap object, the paper's base case.
    let decisions = bounded("n=2 consensus race", || {
        let alg = ThreadedKSet::new(2, 1, 2);
        assert_eq!(alg.space(), 1);
        alg.run(&[0, 1])
    });
    assert_eq!(decisions[0], decisions[1], "agreement");
    assert!(decisions[0] < 2, "validity");
}

#[test]
#[should_panic(expected = "require n >= k >= 1")]
fn k_greater_than_n_still_rejected() {
    let _ = ThreadedKSet::new(3, 4, 2);
}
