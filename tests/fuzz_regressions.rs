//! Replays the committed fuzz-failure corpus on every test run.
//!
//! `tests/corpus/threaded_fuzz.corpus` holds one case per line in the
//! format the fuzz harness prints on failure (`n=.. k=.. m=.. inputs=..
//! perturb=0x..`). Each entry is run several times — the OS scheduler gives
//! a different interleaving per repetition even with identical
//! perturbation — and checked for k-agreement and validity, so a case that
//! once exposed a bug keeps guarding against its return.

// Free-running std threads drive these tests; under `--cfg conc_check` the
// atomic objects route through the model-only conc shims, so this target is
// compiled out (the exhaustive conc suites cover the same layer there).
#![cfg(not(conc_check))]

#[path = "common/fuzz_case.rs"]
mod fuzz_case;

use fuzz_case::{bounded, FuzzCase};

/// The committed corpus, embedded at compile time so a missing file is a
/// build error, not a silently empty replay.
const CORPUS: &str = include_str!("corpus/threaded_fuzz.corpus");

/// Repetitions per corpus entry: cheap insurance against a flaky repro.
const REPS: usize = 3;

fn corpus_cases() -> Vec<(usize, FuzzCase)> {
    CORPUS
        .lines()
        .enumerate()
        .filter(|(_, line)| {
            let t = line.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .map(|(lineno, line)| {
            let case = FuzzCase::parse(line.trim()).unwrap_or_else(|e| {
                panic!("corpus line {} is malformed ({e}): {line:?}", lineno + 1)
            });
            (lineno + 1, case)
        })
        .collect()
}

#[test]
fn corpus_is_nonempty_and_well_formed() {
    let cases = corpus_cases();
    assert!(
        !cases.is_empty(),
        "the committed corpus must contain at least the seed entries"
    );
    for (lineno, case) in &cases {
        // Round-trip: what we parsed is what a failure would have printed.
        let reparsed = FuzzCase::parse(&case.corpus_line()).unwrap();
        assert_eq!(&reparsed, case, "corpus line {lineno} does not round-trip");
    }
}

#[test]
fn corpus_entries_replay_safely() {
    for (lineno, case) in corpus_cases() {
        for rep in 0..REPS {
            let label = format!("corpus line {lineno} rep {rep} — {}", case.corpus_line());
            let decisions = {
                let case = case.clone();
                bounded(label, move || case.run())
            };
            case.check(&decisions);
        }
    }
}
