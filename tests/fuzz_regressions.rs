//! Replays the committed fuzz-failure corpus on every test run.
//!
//! `tests/corpus/threaded_fuzz.corpus` holds one case per line in the
//! format the fuzz harness prints on failure (`n=.. k=.. m=.. inputs=..
//! perturb=0x..`). Each entry is run several times — the OS scheduler gives
//! a different interleaving per repetition even with identical
//! perturbation — and checked for k-agreement and validity, so a case that
//! once exposed a bug keeps guarding against its return.

// Free-running std threads drive these tests; under `--cfg conc_check` the
// atomic objects route through the model-only conc shims, so this target is
// compiled out (the exhaustive conc suites cover the same layer there).
#![cfg(not(conc_check))]

#[path = "common/fuzz_case.rs"]
mod fuzz_case;

use fuzz_case::{bounded, FuzzCase};

/// The committed corpus, embedded at compile time so a missing file is a
/// build error, not a silently empty replay.
const CORPUS: &str = include_str!("corpus/threaded_fuzz.corpus");

/// Repetitions per corpus entry: cheap insurance against a flaky repro.
const REPS: usize = 3;

fn corpus_cases() -> Vec<(usize, FuzzCase)> {
    CORPUS
        .lines()
        .enumerate()
        .filter(|(_, line)| {
            let t = line.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .map(|(lineno, line)| {
            let case = FuzzCase::parse(line.trim()).unwrap_or_else(|e| {
                panic!("corpus line {} is malformed ({e}): {line:?}", lineno + 1)
            });
            (lineno + 1, case)
        })
        .collect()
}

/// Entries harvested by a widened sweep: when `SWAPCONS_FUZZ_PERSIST`
/// names an existing file (the nightly job points it at the night's
/// counterexample harvest), its lines are parsed and replayed exactly like
/// committed corpus entries. This is the sweep-into-the-corpus workflow:
/// download the artifact, point the variable at it, run this target — a
/// malformed line fails the parse immediately, a reproducing line fails
/// the replay with its ready-to-paste corpus line, and a line that
/// replays clean is flagged as an interleaving-dependent repro worth
/// pinning anyway. Unset variable or missing file → no cases, no failure.
fn persisted_cases() -> Vec<(String, FuzzCase)> {
    let Ok(path) = std::env::var("SWAPCONS_FUZZ_PERSIST") else {
        return Vec::new();
    };
    let Ok(contents) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    contents
        .lines()
        .enumerate()
        .filter(|(_, line)| {
            let t = line.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .map(|(lineno, line)| {
            let case = FuzzCase::parse(line.trim()).unwrap_or_else(|e| {
                panic!(
                    "persisted corpus {path} line {} is malformed ({e}): {line:?}",
                    lineno + 1
                )
            });
            (format!("{path}:{}", lineno + 1), case)
        })
        .collect()
}

#[test]
fn persisted_corpus_parses_and_replays() {
    let cases = persisted_cases();
    if cases.is_empty() {
        return; // no harvest mounted — nothing to sweep
    }
    println!(
        "sweeping {} persisted case(s) through the replayer",
        cases.len()
    );
    for (origin, case) in cases {
        // Round-trip first: the paste-into-corpus format is load-bearing.
        let reparsed = FuzzCase::parse(&case.corpus_line()).unwrap();
        assert_eq!(reparsed, case, "{origin} does not round-trip");
        for rep in 0..REPS {
            let label = format!("{origin} rep {rep} — {}", case.corpus_line());
            let decisions = {
                let case = case.clone();
                bounded(label, move || case.run())
            };
            case.check(&decisions);
        }
    }
}

#[test]
fn corpus_is_nonempty_and_well_formed() {
    let cases = corpus_cases();
    assert!(
        !cases.is_empty(),
        "the committed corpus must contain at least the seed entries"
    );
    for (lineno, case) in &cases {
        // Round-trip: what we parsed is what a failure would have printed.
        let reparsed = FuzzCase::parse(&case.corpus_line()).unwrap();
        assert_eq!(&reparsed, case, "corpus line {lineno} does not round-trip");
    }
}

#[test]
fn corpus_entries_replay_safely() {
    for (lineno, case) in corpus_cases() {
        for rep in 0..REPS {
            let label = format!("corpus line {lineno} rep {rep} — {}", case.corpus_line());
            let decisions = {
                let case = case.clone();
                bounded(label, move || case.run())
            };
            case.check(&decisions);
        }
    }
}
