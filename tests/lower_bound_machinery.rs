//! Integration: the lower-bound adversaries against the workspace's
//! algorithms — Theorem 10 tightness, the readable-swap refusal, and the
//! Table 1 consistency sweep.

use swapcons::baselines::{CommitAdoptConsensus, ReadableRacing};
use swapcons::core::SwapKSet;
use swapcons::lower::{lemma9, table1, ValencyOracle};
use swapcons::sim::{Configuration, ProcessId, Protocol};

#[test]
fn theorem10_tight_for_all_small_n() {
    for n in 2..=12 {
        let p = SwapKSet::consensus(n, 2);
        let report = lemma9::theorem10_consensus_witness(&p, p.solo_step_bound()).unwrap();
        assert_eq!(report.forced_objects.len(), n - 1, "n={n}");
        assert_eq!(
            report.forced_objects.len(),
            p.num_objects(),
            "tightness at n={n}"
        );
    }
}

#[test]
fn lemma9_rejects_register_algorithms() {
    // Registers support Read: the overwriting argument cannot apply.
    let p = CommitAdoptConsensus::new(3, 2);
    let c = Configuration::initial(&p, &[0, 1, 1]).unwrap();
    let err = lemma9::run(&p, &c, &[ProcessId(1), ProcessId(2)], 1, 100).unwrap_err();
    assert_eq!(err, lemma9::LemmaNineError::TrivialOpsSupported);
}

#[test]
fn lemma9_detects_agreement_violation_when_alpha_is_fake() {
    // Hand the adversary a world where NO value was actually decided and
    // the "fresh" processes can still decide their own input v without
    // leaving the equalized set: it must report the mirror contradiction
    // rather than fabricate objects. We fake it by passing the *initial*
    // configuration as Cα with v equal to the only input.
    let p = SwapKSet::consensus(3, 2);
    let c = Configuration::initial(&p, &[1, 1, 1]).unwrap();
    // q1's solo run from both worlds is identical and decides v = 1 after
    // touching both objects; since |Q| = 2 > objects it eventually runs out
    // of fresh objects and the last process decides inside the equalized
    // set.
    let err = lemma9::run(
        &p,
        &c,
        &[ProcessId(1), ProcessId(2), ProcessId(0)],
        1,
        p.solo_step_bound(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            lemma9::LemmaNineError::AgreementViolatedByMirror { .. }
        ),
        "{err}"
    );
}

#[test]
fn valency_oracle_vs_known_commitments() {
    // After p0 fully decides, {p1, p2} must be univalent on p0's value.
    let p = SwapKSet::consensus(3, 2);
    let mut c = Configuration::initial(&p, &[0, 1, 1]).unwrap();
    swapcons::sim::runner::solo_run(&p, &mut c, ProcessId(0), p.solo_step_bound()).unwrap();
    let oracle = ValencyOracle::new(60, 150_000);
    let result = oracle.query(&p, &c, &[ProcessId(1), ProcessId(2)]);
    assert!(result.can_decide(0));
    assert!(!result.can_decide(1));
}

#[test]
fn table1_consistency_across_a_wide_grid() {
    let entries = table1::generate(&[3, 5, 9, 17, 33, 65], &[2, 3, 5, 8], 2);
    assert!(table1::violations(&entries).is_empty());
    // Render a non-trivial table without panicking.
    let text = table1::render(&entries);
    assert!(text.lines().count() > entries.len());
}

#[test]
fn readable_swap_defeats_the_overwriting_adversary_conceptually() {
    // Companion check to the refusal: the readable algorithm legitimately
    // uses n-1 objects, the same count Lemma 9 would have demanded — the
    // refusal is about proof technique, not about the count.
    let p = ReadableRacing::new(6, 2);
    assert_eq!(p.num_objects(), 5);
}
