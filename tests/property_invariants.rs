//! Property-based tests (proptest) on the workspace's core invariants:
//! lap-counter algebra, simulator determinism/replay, schedule-independent
//! safety, and Lemma 9 completeness over random parameters.

use proptest::prelude::*;
use swapcons::core::lap::LapVec;
use swapcons::core::SwapKSet;
use swapcons::lower::lemma9;
use swapcons::sim::scheduler::SeededRandom;
use swapcons::sim::{runner, Configuration, ProcessId, Protocol};

fn lapvec_strategy(m: usize) -> impl Strategy<Value = LapVec> {
    proptest::collection::vec(0u64..12, m).prop_map(|laps| {
        let mut v = LapVec::zeros(laps.len());
        for (i, x) in laps.into_iter().enumerate() {
            v.set(i, x);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Domination is a partial order and merge_max is its join.
    #[test]
    fn lap_merge_is_least_upper_bound(a in lapvec_strategy(4), b in lapvec_strategy(4)) {
        let mut j = a.clone();
        j.merge_max(&b);
        // Upper bound.
        prop_assert!(a.dominated_by(&j));
        prop_assert!(b.dominated_by(&j));
        // Least: any common upper bound dominates the join.
        let mut ub = a.clone();
        ub.merge_max(&b);
        for i in 0..4 {
            prop_assert_eq!(j.get(i), a.get(i).max(b.get(i)));
        }
        let _ = ub;
        // Idempotent, commutative.
        let mut j2 = b.clone();
        j2.merge_max(&a);
        prop_assert_eq!(j.clone(), j2);
        let mut j3 = j.clone();
        j3.merge_max(&j);
        prop_assert_eq!(j3, j);
    }

    /// leads_by(v, 2) implies v is the unique leader.
    #[test]
    fn two_lap_lead_implies_unique_leader(u in lapvec_strategy(5)) {
        for v in 0..5usize {
            if u.leads_by(v, 2) {
                let (leader, _) = u.leader();
                prop_assert_eq!(leader as usize, v);
                prop_assert!(u.leads_by(v, 1));
            }
        }
    }

    /// The simulator is deterministic: the same schedule replayed from the
    /// same inputs yields identical histories and decisions.
    #[test]
    fn simulator_replay_determinism(
        seed in 0u64..5000,
        n in 2usize..6,
        steps in 1usize..60,
    ) {
        let p = SwapKSet::consensus(n, 2);
        let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
        let run_once = || {
            let mut c = Configuration::initial(&p, &inputs).unwrap();
            let mut s = SeededRandom::new(seed);
            let out = runner::run(&p, &mut c, &mut s, steps).unwrap();
            (out.history, c.decisions(), c.fingerprint())
        };
        let (h1, d1, f1) = run_once();
        let (h2, d2, f2) = run_once();
        prop_assert_eq!(h1.len(), h2.len());
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(f1, f2);
    }

    /// Safety of Algorithm 1 under arbitrary random schedules + solo
    /// finishes, across random (n, k) and inputs.
    #[test]
    fn algorithm1_safety_random_instances(
        seed in 0u64..2000,
        n in 2usize..7,
        k_off in 0usize..3,
    ) {
        let k = 1 + k_off.min(n - 2);
        let m = (k + 1) as u64;
        let p = SwapKSet::new(n, k, m);
        let inputs: Vec<u64> = (0..n).map(|i| (i as u64) % m).collect();
        let mut c = Configuration::initial(&p, &inputs).unwrap();
        runner::run(&p, &mut c, &mut SeededRandom::new(seed), 12 * n).unwrap();
        for pid in c.running() {
            let out = runner::solo_run(&p, &mut c, pid, p.solo_step_bound()).unwrap();
            // Lemma 8, as a property.
            prop_assert!(out.steps <= p.solo_step_bound());
        }
        prop_assert!(p.task().check(&inputs, &c.decisions()).is_ok());
    }

    /// Lemma 9 forces exactly n-1 distinct objects for every n — the
    /// adversary's completeness as a property.
    #[test]
    fn lemma9_completeness(n in 2usize..12) {
        let p = SwapKSet::consensus(n, 2);
        let report = lemma9::theorem10_consensus_witness(&p, p.solo_step_bound()).unwrap();
        prop_assert_eq!(report.forced_objects.len(), n - 1);
        let distinct: std::collections::HashSet<_> =
            report.forced_objects.iter().collect();
        prop_assert_eq!(distinct.len(), n - 1);
    }

    /// Indistinguishability: two initial configurations differing only in
    /// one process's input are indistinguishable to all other processes.
    #[test]
    fn initial_indistinguishability(n in 2usize..7, flip in 0usize..7) {
        let flip = flip % n;
        let p = SwapKSet::consensus(n, 2);
        let a_inputs: Vec<u64> = vec![0; n];
        let mut b_inputs = a_inputs.clone();
        b_inputs[flip] = 1;
        let a = Configuration::initial(&p, &a_inputs).unwrap();
        let b = Configuration::initial(&p, &b_inputs).unwrap();
        let others: Vec<ProcessId> =
            (0..n).filter(|&i| i != flip).map(ProcessId).collect();
        prop_assert!(a.indistinguishable_to(&b, &others));
        prop_assert!(!a.indistinguishable_to(&b, &[ProcessId(flip)]));
    }
}
