//! The sharded-vs-sequential parity gate (PR 8's tentpole acceptance): the
//! work-stealing engine must be a pure *performance* mode — same verdicts,
//! same violations, same counts — across the n=2 protocol zoo, the Table 1
//! witness sweep, and the valency-oracle fixtures.
//!
//! Parity comes in two strengths, matching what is actually a theorem:
//!
//! * **Complete searches** (the frontier drains inside every budget): the
//!   explored set is traversal-order-independent, so the sharded report
//!   must equal the sequential one in verdict *and* every deterministic
//!   counter.
//! * **Depth-bounded searches** (most zoo rows — lap counters grow without
//!   bound, so no depth completes them): the explored subset depends on
//!   traversal order. The sharded engine's breadth-first waves visit every
//!   state at its minimum depth — a canonical set, independent of worker
//!   count — while the sequential engine is depth-first. Here the gate is
//!   verdict parity against the sequential run plus **exact** report
//!   equality across all sharded thread counts.
//!
//! The CI `parity-sharded` matrix runs this file (and the checkpoint
//! suite) with `SWAPCONS_THREADS` set to 2 and 4.

use swapcons::baselines::{BinaryRacing, CommitAdoptConsensus, ReadableRacing};
use swapcons::core::pairs::PairsKSet;
use swapcons::core::SwapKSet;
use swapcons::lower::table1::{verify_oracle_parity_threaded, verify_witnesses_threaded};
use swapcons::sim::explore::{CheckReport, ModelChecker};
use swapcons::sim::testing::{SelfishConsensus, TwoProcessSwapConsensus};

/// Sharded thread counts under test: `SWAPCONS_THREADS` as a single count
/// or comma-separated list, default `2,4`. Values must be ≥ 2 — 1 is the
/// sequential baseline every row already runs.
fn thread_axis() -> Vec<usize> {
    std::env::var("SWAPCONS_THREADS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t >= 2)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4])
}

/// The two-strength parity assertion described in the module docs.
/// `reference` accumulates the first sharded report per row so later
/// thread counts are also checked against each other exactly.
fn assert_parity(
    label: &str,
    seq: &CheckReport,
    sharded: &CheckReport,
    reference: &mut Option<CheckReport>,
) {
    assert!(
        seq.same_verdict(sharded),
        "{label}: sharded verdict diverged: {seq} vs {sharded}"
    );
    assert_eq!(
        seq.complete, sharded.complete,
        "{label}: completeness diverged: {seq} vs {sharded}"
    );
    if seq.complete {
        assert_eq!(seq.states, sharded.states, "{label}: state-count parity");
        assert_eq!(seq.terminal_states, sharded.terminal_states, "{label}");
        assert_eq!(seq.deepest, sharded.deepest, "{label}");
        assert_eq!(seq.symmetry_group, sharded.symmetry_group, "{label}");
    }
    match reference {
        None => *reference = Some(sharded.clone()),
        Some(reference) => {
            assert_eq!(
                (
                    reference.states,
                    reference.terminal_states,
                    reference.deepest,
                    reference.complete,
                    reference.symmetry_group,
                ),
                (
                    sharded.states,
                    sharded.terminal_states,
                    sharded.deepest,
                    sharded.complete,
                    sharded.symmetry_group,
                ),
                "{label}: sharded thread counts disagree with each other"
            );
        }
    }
}

/// The n=2 zoo: every checker row from the bench consistency gate, each in
/// full and symmetry-reduced mode, sequential vs every sharded count.
#[test]
fn zoo_rows_keep_verdict_and_count_parity() {
    type Row = (
        &'static str,
        ModelChecker,
        Box<dyn Fn(ModelChecker) -> CheckReport>,
    );
    let axis = thread_axis();
    let rows: Vec<Row> = vec![
        {
            let c = ModelChecker::new(10, 50_000).with_solo_budget(2);
            (
                "two_process all-inputs",
                c,
                Box::new(|c: ModelChecker| c.check_all_inputs(&TwoProcessSwapConsensus)),
            )
        },
        {
            let p = SwapKSet::consensus(2, 2);
            let c = ModelChecker::new(30, 200_000).with_solo_budget(p.solo_step_bound());
            (
                "alg1 n=2 all-inputs",
                c,
                Box::new(move |c: ModelChecker| c.check_all_inputs(&p)),
            )
        },
        {
            let p = CommitAdoptConsensus::new(2, 2);
            let c = ModelChecker::new(14, 200_000).with_solo_budget(p.solo_step_bound());
            (
                "commit_adopt n=2 all-inputs",
                c,
                Box::new(move |c: ModelChecker| c.check_all_inputs(&p)),
            )
        },
        {
            let p = BinaryRacing::with_track_len(2, 8);
            let c = ModelChecker::new(16, 200_000);
            (
                "binary_racing n=2 all-inputs",
                c,
                Box::new(move |c: ModelChecker| c.check_all_inputs(&p)),
            )
        },
        {
            let p = ReadableRacing::new(2, 2);
            let c = ModelChecker::new(16, 150_000).with_solo_budget(p.solo_step_bound());
            (
                "readable_racing n=2 all-inputs",
                c,
                Box::new(move |c: ModelChecker| c.check_all_inputs(&p)),
            )
        },
        {
            let p = PairsKSet::new(4, 2, 3);
            let c = ModelChecker::new(10, 100_000).with_solo_budget(1);
            (
                "pairs_kset n=4 all-inputs",
                c,
                Box::new(move |c: ModelChecker| c.check_all_inputs(&p)),
            )
        },
    ];
    for (label, checker, run) in rows {
        for symmetry in [false, true] {
            let mut base = checker;
            base.symmetry_reduction = symmetry;
            let seq = run(base);
            assert!(seq.passed(), "{label}: {seq}");
            let mut reference = None;
            for &t in &axis {
                let sharded = run(base.with_threads(t));
                assert_parity(
                    &format!("{label} (symmetry={symmetry}, t={t})"),
                    &seq,
                    &sharded,
                    &mut reference,
                );
            }
        }
    }
}

/// A violating workload: the sharded engine must catch the same violation
/// kind the sequential engine does (schedules and pre-stop state counts
/// are allowed to differ — exploration order decides which counterexample
/// is found first).
#[test]
fn violation_kind_parity_on_the_broken_protocol() {
    let p = SelfishConsensus { n: 2 };
    let seq = ModelChecker::new(10, 10_000).check(&p, &[0, 1]);
    let seq_kind = seq.violation.as_ref().expect("sequential catches it");
    for t in thread_axis() {
        let sharded = ModelChecker::new(10, 10_000)
            .with_threads(t)
            .check(&p, &[0, 1]);
        let shard_kind = sharded.violation.as_ref().expect("sharded catches it");
        assert_eq!(
            std::mem::discriminant(&seq_kind.kind),
            std::mem::discriminant(&shard_kind.kind),
            "t={t}: violation kind diverged: {seq} vs {sharded}"
        );
    }
}

/// Sharded runs are deterministic run-to-run at every thread count, not
/// merely equivalent: the wave construction is canonical, so repeating a
/// search must reproduce the report exactly.
#[test]
fn sharded_reports_are_deterministic_run_to_run() {
    let p = SwapKSet::consensus(2, 2);
    for t in thread_axis() {
        let checker = ModelChecker::new(12, 50_000).with_threads(t);
        let first = checker.check(&p, &[0, 1]);
        let second = checker.check(&p, &[0, 1]);
        assert!(first.same_verdict(&second));
        assert_eq!(
            (
                first.states,
                first.terminal_states,
                first.deepest,
                first.complete
            ),
            (
                second.states,
                second.terminal_states,
                second.deepest,
                second.complete
            ),
            "t={t}: sharded search is not deterministic"
        );
    }
}

/// An exact state budget that the complete search lands on precisely must
/// still report `complete = true` when sharded — the budget discipline
/// (`BudgetNew` vs `New`) cannot turn an exactly-full search into a
/// truncated one.
#[test]
fn exactly_max_states_stays_complete_when_sharded() {
    let seq = ModelChecker::new(10, 50_000)
        .with_solo_budget(2)
        .check_all_inputs(&TwoProcessSwapConsensus);
    assert!(seq.complete, "{seq}");
    for t in thread_axis() {
        let exact = ModelChecker::new(10, seq.states)
            .with_solo_budget(2)
            .with_threads(t)
            .check_all_inputs(&TwoProcessSwapConsensus);
        assert!(exact.complete, "t={t}: exactly-max-states run: {exact}");
        assert_eq!(exact.states, seq.states);
    }
}

/// Satellite 6's integration pin: a sharded run whose shared deadline is
/// already expired truncates cooperatively — `deadline_truncated` is set,
/// nothing is explored, and the run is not misreported as paused or
/// failing — while a generous deadline changes nothing.
#[test]
fn shared_deadline_truncates_sharded_runs_cooperatively() {
    use std::time::Duration;
    let p = SwapKSet::consensus(2, 2);
    for t in thread_axis() {
        let expired = ModelChecker::new(12, 50_000)
            .with_threads(t)
            .with_deadline(Duration::ZERO)
            .check(&p, &[0, 1]);
        assert!(expired.deadline_truncated, "t={t}: {expired}");
        assert_eq!(expired.states, 0, "t={t}: nothing explored after expiry");
        assert!(!expired.paused && expired.passed(), "t={t}: {expired}");

        let generous = ModelChecker::new(12, 50_000)
            .with_threads(t)
            .with_deadline(Duration::from_secs(600))
            .check(&p, &[0, 1]);
        let unbounded = ModelChecker::new(12, 50_000)
            .with_threads(t)
            .check(&p, &[0, 1]);
        assert!(!generous.deadline_truncated, "t={t}: {generous}");
        assert_eq!(generous.states, unbounded.states, "t={t}");
    }
}

/// The Table 1 witness sweep: the sequential and sharded sweeps must agree
/// row by row, full and reduced.
#[test]
fn table1_witness_sweep_keeps_parity() {
    let sequential = verify_witnesses_threaded(1);
    for t in thread_axis() {
        let sharded = verify_witnesses_threaded(t);
        assert_eq!(sequential.len(), sharded.len());
        for ((row, seq_full, seq_red), (srow, sh_full, sh_red)) in
            sequential.iter().zip(sharded.iter())
        {
            assert_eq!(format!("{row}"), format!("{srow}"));
            let label = format!("table1 {row} (t={t})");
            assert_parity(&label, seq_full, sh_full, &mut None);
            assert_parity(&format!("{label} reduced"), seq_red, sh_red, &mut None);
        }
    }
}

/// The valency-oracle fixtures: verdicts, witness-value sets, and
/// exhaustiveness must match the sequential oracle at every thread count;
/// exhaustive queries must also agree on the explored-state count.
#[test]
fn oracle_fixture_sweep_keeps_parity() {
    use std::collections::BTreeSet;
    let sequential = verify_oracle_parity_threaded(1);
    for t in thread_axis() {
        let sharded = verify_oracle_parity_threaded(t);
        assert_eq!(sequential.len(), sharded.len());
        for ((label, seq_full, seq_red), (slabel, sh_full, sh_red)) in
            sequential.iter().zip(sharded.iter())
        {
            assert_eq!(label, slabel);
            for (mode, seq, sharded) in [("full", seq_full, sh_full), ("reduced", seq_red, sh_red)]
            {
                let tag = format!("oracle {label} {mode} (t={t})");
                assert_eq!(seq.verdict(), sharded.verdict(), "{tag}");
                assert_eq!(
                    seq.witnesses.keys().collect::<BTreeSet<_>>(),
                    sharded.witnesses.keys().collect::<BTreeSet<_>>(),
                    "{tag}: witness-value sets diverged"
                );
                assert_eq!(seq.exhaustive, sharded.exhaustive, "{tag}");
                assert_eq!(seq.symmetry_group, sharded.symmetry_group, "{tag}");
                if seq.exhaustive {
                    assert_eq!(seq.states, sharded.states, "{tag}: state-count parity");
                }
            }
        }
    }
}
