//! Fuzz harness for the threaded Algorithm 1: randomized sweeps over the
//! whole parameter space — `(n, k, m)`, the input vector, and a
//! yield-perturbation seed that skews each thread's start and pacing — with
//! the wall-clock guard pattern from `tests/edge_cases.rs`, so a livelock
//! regression fails the suite instead of hanging it.
//!
//! Fixed-shape tests pin known-interesting points (`tests/edge_cases.rs`,
//! `tests/threaded_stress.rs`); this harness samples the space in between.
//! Every sampled run asserts the two safety properties the paper's tasks
//! demand, which must hold under *any* OS schedule:
//!
//! * **k-agreement** — at most `k` distinct decisions;
//! * **validity** — every decision is some process's input.
//!
//! Seeds are deterministic (derived from a fixed master seed), so a failure
//! reproduces by rerunning the test; the failing case's parameters are in
//! the panic message.
//!
//! # Widening the sweep
//!
//! The per-PR defaults are deliberately cheap. The nightly CI job widens
//! them through environment variables read at test start:
//!
//! * `SWAPCONS_FUZZ_CASES` — sampled cases for the main sweep (default 24;
//!   the unanimous and repeat variants scale proportionally);
//! * `SWAPCONS_FUZZ_SEED` — master seed for case derivation (default
//!   `0x5EED_CA5E`), so distinct nights explore distinct case sets while
//!   any single run stays reproducible from its printed parameters.

use std::collections::HashSet;
use std::sync::mpsc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swapcons::core::threaded::ThreadedKSet;

/// Generous ceiling per sampled race (they complete in milliseconds in
/// practice; the guard exists to convert livelock into failure).
const GUARD: Duration = Duration::from_secs(60);

/// Number of cases for the main sweep: `SWAPCONS_FUZZ_CASES` or 24.
fn fuzz_cases() -> usize {
    env_or("SWAPCONS_FUZZ_CASES", 24)
}

/// Master seed for case derivation: `SWAPCONS_FUZZ_SEED` or `0x5EED_CA5E`.
fn fuzz_seed() -> u64 {
    env_or("SWAPCONS_FUZZ_SEED", 0x5EED_CA5E)
}

/// Parse an env var, panicking on malformed values (a silently ignored
/// nightly widening would be worse than a loud failure).
fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    match std::env::var(name) {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|e| panic!("{name}={raw} did not parse: {e:?}")),
        Err(_) => default,
    }
}

/// Run `f` on a fresh thread, failing the test if it outlives `GUARD`.
fn bounded<T: Send + 'static>(label: String, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        // A send error only means the receiver timed out and the test
        // already failed; nothing to do from this side.
        let _ = tx.send(f());
    });
    match rx.recv_timeout(GUARD) {
        Ok(v) => v,
        Err(_) => panic!("{label}: no decision within {GUARD:?} (livelock?)"),
    }
}

/// One sampled case: instance shape, inputs, and the perturbation seed.
#[derive(Clone, Debug)]
struct FuzzCase {
    n: usize,
    k: usize,
    m: u64,
    inputs: Vec<u64>,
    perturb_seed: u64,
}

impl FuzzCase {
    /// Sample a case from the given RNG: `2 ≤ n ≤ 8`, `1 ≤ k ≤ n`
    /// (including the `k = n` zero-object endpoint), `2 ≤ m ≤ 5`, inputs
    /// uniform over `{0, …, m-1}`.
    fn sample(rng: &mut StdRng) -> Self {
        let n = rng.gen_range(2..9);
        let k = rng.gen_range(1..n + 1);
        let m = rng.gen_range(2..6u64);
        let inputs = (0..n).map(|_| rng.gen_range(0..m)).collect();
        FuzzCase {
            n,
            k,
            m,
            inputs,
            perturb_seed: rng.gen_range(0..u64::MAX),
        }
    }

    /// Run the race with per-thread yield perturbation: each thread spins
    /// and yields a seeded-random amount before proposing, skewing thread
    /// start order and pacing so different seeds exercise genuinely
    /// different OS interleavings (the threaded model's only scheduler).
    fn run(&self) -> Vec<u64> {
        let alg = ThreadedKSet::new(self.n, self.k, self.m);
        let perturb_seed = self.perturb_seed;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .inputs
                .iter()
                .enumerate()
                .map(|(pid, &input)| {
                    let alg = &alg;
                    scope.spawn(move || {
                        let mut rng =
                            StdRng::seed_from_u64(perturb_seed ^ (pid as u64).wrapping_mul(0x9E37));
                        for _ in 0..rng.gen_range(0..64u32) {
                            std::hint::spin_loop();
                        }
                        let yields = rng.gen_range(0..4u32);
                        for _ in 0..yields {
                            std::thread::yield_now();
                        }
                        alg.propose(pid, input)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("proposer panicked"))
                .collect()
        })
    }

    /// k-agreement and validity for this case's decisions.
    fn check(&self, decisions: &[u64]) {
        assert_eq!(decisions.len(), self.n, "{self:?}");
        let distinct: HashSet<u64> = decisions.iter().copied().collect();
        assert!(
            distinct.len() <= self.k,
            "k-agreement violated: {distinct:?} exceeds k={} in {self:?}",
            self.k
        );
        for d in decisions {
            assert!(
                self.inputs.contains(d),
                "validity violated: decision {d} is nobody's input in {self:?}"
            );
        }
    }
}

#[test]
fn fuzz_threaded_kset_random_shapes_and_perturbations() {
    // Deterministic master seed: every run of one configuration executes
    // the same sampled cases; the nightly job widens count and seed via
    // the environment (see the module docs).
    let mut rng = StdRng::seed_from_u64(fuzz_seed());
    for case_index in 0..fuzz_cases() {
        let case = FuzzCase::sample(&mut rng);
        let label = format!("fuzz case {case_index}: {case:?}");
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        case.check(&decisions);
    }
}

#[test]
fn fuzz_unanimous_inputs_always_decide_the_input() {
    // Validity pinned harder: with unanimous inputs, every decision must be
    // exactly that input, whatever the shape or perturbation.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0xF0BB ^ 0xBEEF);
    for case_index in 0..fuzz_cases().div_ceil(3) {
        let mut case = FuzzCase::sample(&mut rng);
        let v = case.inputs[0];
        case.inputs = vec![v; case.n];
        let label = format!("unanimous fuzz case {case_index}: {case:?}");
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        assert!(
            decisions.iter().all(|&d| d == v),
            "unanimous input {v} not decided: {decisions:?} in {case:?}"
        );
    }
}

#[test]
fn fuzz_repeated_same_seed_is_safe_across_reruns() {
    // The same case run repeatedly under real scheduling noise: safety must
    // hold on every repetition (the OS gives a different interleaving each
    // time even with identical perturbation).
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 7);
    let case = FuzzCase::sample(&mut rng);
    for round in 0..fuzz_cases().div_ceil(4) {
        let label = format!("repeat round {round}: {case:?}");
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        case.check(&decisions);
    }
}
