//! Fuzz harness for the threaded Algorithm 1: randomized sweeps over the
//! whole parameter space — `(n, k, m)`, the input vector, and a
//! yield-perturbation seed that skews each thread's start and pacing — with
//! the wall-clock guard pattern from `tests/edge_cases.rs`, so a livelock
//! regression fails the suite instead of hanging it.
//!
//! Fixed-shape tests pin known-interesting points (`tests/edge_cases.rs`,
//! `tests/threaded_stress.rs`); this harness samples the space in between.
//! Every sampled run asserts the two safety properties the paper's tasks
//! demand, which must hold under *any* OS schedule:
//!
//! * **k-agreement** — at most `k` distinct decisions;
//! * **validity** — every decision is some process's input.
//!
//! Seeds are deterministic (derived from a fixed master seed), so a failure
//! reproduces by rerunning the test. Every failure message carries the
//! failing case as a **corpus line** (`n=.. k=.. m=.. inputs=..
//! perturb=0x..`); append that line to `tests/corpus/threaded_fuzz.corpus`
//! and `tests/fuzz_regressions.rs` will replay it on every future run.
//!
//! # Widening the sweep
//!
//! The per-PR defaults are deliberately cheap. The nightly CI job widens
//! them through environment variables read at test start:
//!
//! * `SWAPCONS_FUZZ_CASES` — sampled cases for the main sweep (default 24;
//!   the unanimous, crash, and repeat variants scale proportionally);
//! * `SWAPCONS_FUZZ_SEED` — master seed for case derivation (default
//!   `0x5EED_CA5E`), so distinct nights explore distinct case sets while
//!   any single run stays reproducible from its printed parameters;
//! * `SWAPCONS_FUZZ_DEADLINE_SECS` — wall-clock budget per sweep (default
//!   unlimited): when the budget runs out, the sweep stops cleanly after
//!   the current case and reports how far it got, so a widened nightly run
//!   can never hang or overrun the CI runner (each individual case is
//!   additionally guarded by [`fuzz_case::GUARD`]).

// Free-running std threads drive these tests; under `--cfg conc_check` the
// atomic objects route through the model-only conc shims, so this target is
// compiled out (the exhaustive conc suites cover the same layer there).
#![cfg(not(conc_check))]

#[path = "common/fuzz_case.rs"]
mod fuzz_case;

use fuzz_case::{bounded, FuzzCase};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of cases for the main sweep: `SWAPCONS_FUZZ_CASES` or 24.
fn fuzz_cases() -> usize {
    env_or("SWAPCONS_FUZZ_CASES", 24)
}

/// Master seed for case derivation: `SWAPCONS_FUZZ_SEED` or `0x5EED_CA5E`.
fn fuzz_seed() -> u64 {
    env_or("SWAPCONS_FUZZ_SEED", 0x5EED_CA5E)
}

/// Per-sweep wall-clock budget tracker driven by
/// `SWAPCONS_FUZZ_DEADLINE_SECS` (absent = unlimited). [`Sweep::expired`]
/// is checked between cases; an expired sweep stops cleanly and reports
/// its coverage instead of overrunning the CI runner.
struct Sweep {
    started: std::time::Instant,
    deadline: Option<std::time::Duration>,
    completed: usize,
}

impl Sweep {
    fn start() -> Self {
        let deadline = std::env::var("SWAPCONS_FUZZ_DEADLINE_SECS")
            .ok()
            .map(|raw| {
                let secs: u64 = raw
                    .parse()
                    .unwrap_or_else(|e| panic!("SWAPCONS_FUZZ_DEADLINE_SECS={raw}: {e:?}"));
                std::time::Duration::from_secs(secs)
            });
        Sweep {
            started: std::time::Instant::now(),
            deadline,
            completed: 0,
        }
    }

    /// `true` once the budget is spent; prints the coverage on first expiry.
    fn expired(&mut self, total: usize) -> bool {
        match self.deadline {
            Some(d) if self.started.elapsed() >= d => {
                eprintln!(
                    "fuzz sweep deadline ({d:?}) reached after {}/{total} cases; stopping cleanly",
                    self.completed
                );
                true
            }
            _ => false,
        }
    }

    fn case_done(&mut self) {
        self.completed += 1;
    }
}

/// Parse an env var, panicking on malformed values (a silently ignored
/// nightly widening would be worse than a loud failure).
fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    match std::env::var(name) {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|e| panic!("{name}={raw} did not parse: {e:?}")),
        Err(_) => default,
    }
}

#[test]
fn fuzz_threaded_kset_random_shapes_and_perturbations() {
    // Deterministic master seed: every run of one configuration executes
    // the same sampled cases; the nightly job widens count and seed via
    // the environment (see the module docs).
    let mut rng = StdRng::seed_from_u64(fuzz_seed());
    let mut sweep = Sweep::start();
    let total = fuzz_cases();
    for case_index in 0..total {
        if sweep.expired(total) {
            break;
        }
        let case = FuzzCase::sample(&mut rng);
        let label = format!(
            "fuzz case {case_index} — corpus line: {}",
            case.corpus_line()
        );
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        case.check(&decisions);
        sweep.case_done();
    }
}

#[test]
fn fuzz_crash_injected_races_stay_safe_and_survivors_decide() {
    // Crash-failure sweep: 1 to n-1 threads stop dead at random swap
    // counts (including before their first step), and the survivors must
    // still decide a k-agreeing, valid set of values — the threaded
    // counterpart of the model checker's exhaustive crash-pattern gate.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x0C2A_54E5);
    let mut sweep = Sweep::start();
    let total = fuzz_cases();
    for case_index in 0..total {
        if sweep.expired(total) {
            break;
        }
        let case = FuzzCase::sample_with_crashes(&mut rng);
        let label = format!(
            "crash fuzz case {case_index} — corpus line: {}",
            case.corpus_line()
        );
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        case.check(&decisions);
        sweep.case_done();
    }
}

#[test]
fn fuzz_unanimous_inputs_always_decide_the_input() {
    // Validity pinned harder: with unanimous inputs, every decision must be
    // exactly that input, whatever the shape or perturbation.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0xF0BB ^ 0xBEEF);
    for case_index in 0..fuzz_cases().div_ceil(3) {
        let mut case = FuzzCase::sample(&mut rng);
        let v = case.inputs[0];
        case.inputs = vec![v; case.n];
        let label = format!(
            "unanimous fuzz case {case_index} — corpus line: {}",
            case.corpus_line()
        );
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        assert!(
            decisions.iter().all(|&d| d == Some(v)),
            "unanimous input {v} not decided: {decisions:?} — corpus line: {}",
            case.corpus_line()
        );
    }
}

#[test]
fn fuzz_repeated_same_seed_is_safe_across_reruns() {
    // The same case run repeatedly under real scheduling noise: safety must
    // hold on every repetition (the OS gives a different interleaving each
    // time even with identical perturbation).
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 7);
    let case = FuzzCase::sample(&mut rng);
    for round in 0..fuzz_cases().div_ceil(4) {
        let label = format!("repeat round {round} — corpus line: {}", case.corpus_line());
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        case.check(&decisions);
    }
}

#[test]
fn corpus_line_round_trips() {
    // The persistence format must invert exactly, or a committed failure
    // would replay a different case than the one that failed.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0xC0 ^ 0xDE);
    for i in 0..64 {
        let case = if i % 2 == 0 {
            FuzzCase::sample(&mut rng)
        } else {
            FuzzCase::sample_with_crashes(&mut rng)
        };
        let line = case.corpus_line();
        let parsed = FuzzCase::parse(&line)
            .unwrap_or_else(|e| panic!("own corpus line {line:?} failed to parse: {e}"));
        assert_eq!(parsed, case, "round-trip changed the case: {line}");
    }
    // Crash-schedule validation is loud, not silent.
    let base = "n=2 k=1 m=2 inputs=0,1 perturb=0x1";
    assert!(FuzzCase::parse(&format!("{base} crashes=0@0,1@0")).is_err());
    assert!(FuzzCase::parse(&format!("{base} crashes=2@0")).is_err());
    assert!(FuzzCase::parse(&format!("{base} crashes=0@0,0@1")).is_err());
    assert!(FuzzCase::parse(&format!("{base} crashes=0")).is_err());
}
