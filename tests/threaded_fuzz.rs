//! Fuzz harness for the threaded Algorithm 1: randomized sweeps over the
//! whole parameter space — `(n, k, m)`, the input vector, and a
//! yield-perturbation seed that skews each thread's start and pacing — with
//! the wall-clock guard pattern from `tests/edge_cases.rs`, so a livelock
//! regression fails the suite instead of hanging it.
//!
//! Fixed-shape tests pin known-interesting points (`tests/edge_cases.rs`,
//! `tests/threaded_stress.rs`); this harness samples the space in between.
//! Every sampled run asserts the two safety properties the paper's tasks
//! demand, which must hold under *any* OS schedule:
//!
//! * **k-agreement** — at most `k` distinct decisions;
//! * **validity** — every decision is some process's input.
//!
//! Seeds are deterministic (derived from a fixed master seed), so a failure
//! reproduces by rerunning the test. Every failure message carries the
//! failing case as a **corpus line** (`n=.. k=.. m=.. inputs=..
//! perturb=0x..`); append that line to `tests/corpus/threaded_fuzz.corpus`
//! and `tests/fuzz_regressions.rs` will replay it on every future run.
//!
//! # Widening the sweep
//!
//! The per-PR defaults are deliberately cheap. The nightly CI job widens
//! them through environment variables read at test start:
//!
//! * `SWAPCONS_FUZZ_CASES` — sampled cases for the main sweep (default 24;
//!   the unanimous, crash, and repeat variants scale proportionally);
//! * `SWAPCONS_FUZZ_SEED` — master seed for case derivation (default
//!   `0x5EED_CA5E`), so distinct nights explore distinct case sets while
//!   any single run stays reproducible from its printed parameters;
//! * `SWAPCONS_FUZZ_DEADLINE_SECS` — wall-clock budget per sweep (default
//!   unlimited): when the budget runs out, the sweep stops cleanly after
//!   the current case and reports how far it got, so a widened nightly run
//!   can never hang or overrun the CI runner (each individual case is
//!   additionally guarded by [`fuzz_case::GUARD`]);
//! * `SWAPCONS_FUZZ_WORKERS` — worker threads driving the main and crash
//!   sweeps (default 2) on the same vendored work-stealing pool as the
//!   sharded search engine. Cases are sampled **up front** from the master
//!   seed, so coverage is identical at every worker count — only the
//!   execution overlaps — and the deadline is shared by all workers;
//! * `SWAPCONS_FUZZ_PERSIST` — a file path: every failing case's corpus
//!   line is appended there (one per line, ready to copy into
//!   `tests/corpus/threaded_fuzz.corpus`), and the sweep reports **all**
//!   failures at once instead of stopping at the first.

// Free-running std threads drive these tests; under `--cfg conc_check` the
// atomic objects route through the model-only conc shims, so this target is
// compiled out (the exhaustive conc suites cover the same layer there).
#![cfg(not(conc_check))]

#[path = "common/fuzz_case.rs"]
mod fuzz_case;

use fuzz_case::{bounded, FuzzCase};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of cases for the main sweep: `SWAPCONS_FUZZ_CASES` or 24.
fn fuzz_cases() -> usize {
    env_or("SWAPCONS_FUZZ_CASES", 24)
}

/// Master seed for case derivation: `SWAPCONS_FUZZ_SEED` or `0x5EED_CA5E`.
fn fuzz_seed() -> u64 {
    env_or("SWAPCONS_FUZZ_SEED", 0x5EED_CA5E)
}

/// Worker threads driving the main and crash sweeps:
/// `SWAPCONS_FUZZ_WORKERS` or 2. Each sampled case still spawns its own
/// `n` protocol threads; the pool overlaps *cases*, which shortens a
/// widened nightly's wall clock on a multi-core runner (and on one core
/// costs nothing but extra interleaving noise — itself useful to a fuzzer).
fn fuzz_workers() -> usize {
    env_or("SWAPCONS_FUZZ_WORKERS", 2).max(1)
}

/// The shared per-sweep wall-clock budget: `SWAPCONS_FUZZ_DEADLINE_SECS`
/// (absent = unlimited), checked by every worker between cases.
fn sweep_deadline() -> Option<std::time::Duration> {
    std::env::var("SWAPCONS_FUZZ_DEADLINE_SECS")
        .ok()
        .map(|raw| {
            let secs: u64 = raw
                .parse()
                .unwrap_or_else(|e| panic!("SWAPCONS_FUZZ_DEADLINE_SECS={raw}: {e:?}"));
            std::time::Duration::from_secs(secs)
        })
}

/// Render a caught panic payload for the failure report.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Drive pre-sampled cases across the work-stealing pool under one shared
/// deadline. Panics inside a case (including the per-case livelock guard)
/// are caught and collected; after the join, every failing case's corpus
/// line is appended to `SWAPCONS_FUZZ_PERSIST` (if set) and the sweep
/// fails with all lines at once — a widened nightly reports its whole
/// harvest, not just the first hit.
fn parallel_sweep(
    kind: &str,
    cases: Vec<fuzz_case::FuzzCase>,
    run_case: impl Fn(usize, &fuzz_case::FuzzCase) + Send + Sync,
) {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let total = cases.len();
    let workers = fuzz_workers();
    let pool = workpool::WorkQueues::new(workers);
    for (i, case) in cases.into_iter().enumerate() {
        pool.push(i % workers, (i, case));
    }
    let deadline = sweep_deadline();
    let started = std::time::Instant::now();
    let completed = AtomicUsize::new(0);
    // (corpus line, panic message) per failing case.
    let failures: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (pool, run_case) = (&pool, &run_case);
            let (completed, failures) = (&completed, &failures);
            scope.spawn(move || loop {
                if deadline.is_some_and(|d| started.elapsed() >= d) {
                    return;
                }
                let Some((i, case)) = pool.pop(w) else { return };
                let outcome = catch_unwind(AssertUnwindSafe(|| run_case(i, &case)));
                pool.complete_one();
                completed.fetch_add(1, Ordering::Relaxed);
                if let Err(payload) = outcome {
                    failures
                        .lock()
                        .unwrap()
                        .push((case.corpus_line(), panic_text(payload)));
                }
            });
        }
    });
    let done = completed.load(Ordering::Relaxed);
    if done < total {
        eprintln!(
            "{kind} fuzz sweep deadline ({:?}) reached after {done}/{total} cases; stopping cleanly",
            deadline.expect("only a deadline stops a sweep early")
        );
    }
    let failures = failures.into_inner().unwrap();
    if failures.is_empty() {
        return;
    }
    if let Ok(path) = std::env::var("SWAPCONS_FUZZ_PERSIST") {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("SWAPCONS_FUZZ_PERSIST={path}: {e}"));
        for (line, _) in &failures {
            writeln!(file, "{line}").expect("corpus persistence write");
        }
        eprintln!(
            "persisted {} failing corpus line(s) to {path}",
            failures.len()
        );
    }
    let report: Vec<String> = failures
        .iter()
        .map(|(line, msg)| format!("  {line}\n    ↳ {msg}"))
        .collect();
    panic!(
        "{kind} fuzz sweep: {} failing case(s):\n{}",
        failures.len(),
        report.join("\n")
    );
}

/// Parse an env var, panicking on malformed values (a silently ignored
/// nightly widening would be worse than a loud failure).
fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Debug,
{
    match std::env::var(name) {
        Ok(raw) => raw
            .parse()
            .unwrap_or_else(|e| panic!("{name}={raw} did not parse: {e:?}")),
        Err(_) => default,
    }
}

#[test]
fn fuzz_threaded_kset_random_shapes_and_perturbations() {
    // Deterministic master seed: every run of one configuration executes
    // the same sampled cases (at any worker count); the nightly job widens
    // count and seed via the environment (see the module docs).
    let mut rng = StdRng::seed_from_u64(fuzz_seed());
    let cases: Vec<FuzzCase> = (0..fuzz_cases())
        .map(|_| FuzzCase::sample(&mut rng))
        .collect();
    parallel_sweep("main", cases, |case_index, case| {
        let label = format!(
            "fuzz case {case_index} — corpus line: {}",
            case.corpus_line()
        );
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        case.check(&decisions);
    });
}

#[test]
fn fuzz_crash_injected_races_stay_safe_and_survivors_decide() {
    // Crash-failure sweep: 1 to n-1 threads stop dead at random swap
    // counts (including before their first step), and the survivors must
    // still decide a k-agreeing, valid set of values — the threaded
    // counterpart of the model checker's exhaustive crash-pattern gate.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x0C2A_54E5);
    let cases: Vec<FuzzCase> = (0..fuzz_cases())
        .map(|_| FuzzCase::sample_with_crashes(&mut rng))
        .collect();
    parallel_sweep("crash", cases, |case_index, case| {
        let label = format!(
            "crash fuzz case {case_index} — corpus line: {}",
            case.corpus_line()
        );
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        case.check(&decisions);
    });
}

#[test]
fn fuzz_unanimous_inputs_always_decide_the_input() {
    // Validity pinned harder: with unanimous inputs, every decision must be
    // exactly that input, whatever the shape or perturbation.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0xF0BB ^ 0xBEEF);
    for case_index in 0..fuzz_cases().div_ceil(3) {
        let mut case = FuzzCase::sample(&mut rng);
        let v = case.inputs[0];
        case.inputs = vec![v; case.n];
        let label = format!(
            "unanimous fuzz case {case_index} — corpus line: {}",
            case.corpus_line()
        );
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        assert!(
            decisions.iter().all(|&d| d == Some(v)),
            "unanimous input {v} not decided: {decisions:?} — corpus line: {}",
            case.corpus_line()
        );
    }
}

#[test]
fn fuzz_repeated_same_seed_is_safe_across_reruns() {
    // The same case run repeatedly under real scheduling noise: safety must
    // hold on every repetition (the OS gives a different interleaving each
    // time even with identical perturbation).
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 7);
    let case = FuzzCase::sample(&mut rng);
    for round in 0..fuzz_cases().div_ceil(4) {
        let label = format!("repeat round {round} — corpus line: {}", case.corpus_line());
        let decisions = {
            let case = case.clone();
            bounded(label, move || case.run())
        };
        case.check(&decisions);
    }
}

#[test]
fn corpus_line_round_trips() {
    // The persistence format must invert exactly, or a committed failure
    // would replay a different case than the one that failed.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0xC0 ^ 0xDE);
    for i in 0..64 {
        let case = if i % 2 == 0 {
            FuzzCase::sample(&mut rng)
        } else {
            FuzzCase::sample_with_crashes(&mut rng)
        };
        let line = case.corpus_line();
        let parsed = FuzzCase::parse(&line)
            .unwrap_or_else(|e| panic!("own corpus line {line:?} failed to parse: {e}"));
        assert_eq!(parsed, case, "round-trip changed the case: {line}");
    }
    // Crash-schedule validation is loud, not silent.
    let base = "n=2 k=1 m=2 inputs=0,1 perturb=0x1";
    assert!(FuzzCase::parse(&format!("{base} crashes=0@0,1@0")).is_err());
    assert!(FuzzCase::parse(&format!("{base} crashes=2@0")).is_err());
    assert!(FuzzCase::parse(&format!("{base} crashes=0@0,0@1")).is_err());
    assert!(FuzzCase::parse(&format!("{base} crashes=0")).is_err());
}
