//! Integration: threaded implementations under genuine OS scheduling,
//! repeatedly and oversubscribed.

// Free-running std threads drive these tests; under `--cfg conc_check` the
// atomic objects route through the model-only conc shims, so this target is
// compiled out (the exhaustive conc suites cover the same layer there).
#![cfg(not(conc_check))]

use std::collections::HashSet;

use swapcons::core::threaded::{ThreadedKSet, ThreadedPairs};
use swapcons::core::two_process::ThreadedTwoProcess;
use swapcons::objects::atomic::AtomicSwap;

fn assert_kset(inputs: &[u64], decisions: &[u64], k: usize) {
    let distinct: HashSet<u64> = decisions.iter().copied().collect();
    assert!(distinct.len() <= k, "{decisions:?} exceed k={k}");
    for d in decisions {
        assert!(inputs.contains(d), "decision {d} is nobody's input");
    }
}

#[test]
fn repeated_threaded_consensus_rounds() {
    for round in 0..30u64 {
        let n = 4;
        let alg = ThreadedKSet::new(n, 1, 2);
        let inputs: Vec<u64> = (0..n).map(|i| ((i as u64) + round) % 2).collect();
        let decisions = alg.run(&inputs);
        assert_kset(&inputs, &decisions, 1);
    }
}

#[test]
fn oversubscribed_kset() {
    // More threads than typical core counts.
    let n = 16;
    let k = 5;
    let m = 6;
    let alg = ThreadedKSet::new(n, k, m);
    let inputs: Vec<u64> = (0..n).map(|i| (i as u64) % m).collect();
    let decisions = alg.run(&inputs);
    assert_kset(&inputs, &decisions, k);
}

#[test]
fn pairs_and_two_process_compose() {
    // The pairs construction is literally n-k two-process objects; check
    // its building block under contention and the composite.
    for _ in 0..20 {
        let obj = std::sync::Arc::new(ThreadedTwoProcess::new());
        let a = std::sync::Arc::clone(&obj);
        let t = std::thread::spawn(move || a.propose(5));
        let mine = obj.propose(7);
        let theirs = t.join().unwrap();
        assert_eq!(mine, theirs);
    }
    let alg = ThreadedPairs::new(10, 6);
    let inputs: Vec<u64> = (0..10).map(|i| i as u64).collect();
    let decisions = alg.run(&inputs);
    assert_kset(&inputs, &decisions, 6);
    assert_eq!(alg.space(), 4);
}

#[test]
fn atomic_swap_multi_object_exchange() {
    // A ring of swap objects exercised by many threads: every injected
    // token is conserved (returned or resident at the end).
    const THREADS: usize = 8;
    const OBJECTS: usize = 4;
    const OPS: usize = 500;
    let objects: std::sync::Arc<Vec<AtomicSwap<u64>>> =
        std::sync::Arc::new((0..OBJECTS as u64).map(AtomicSwap::new).collect());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let objects = std::sync::Arc::clone(&objects);
        handles.push(std::thread::spawn(move || {
            let mut received = Vec::with_capacity(OPS);
            for i in 0..OPS {
                let token = 1000 + (t * OPS + i) as u64;
                received.push(objects[(t + i) % OBJECTS].swap(token));
            }
            received
        }));
    }
    let mut seen: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let objects = std::sync::Arc::try_unwrap(objects).unwrap_or_else(|_| panic!("sole owner"));
    for obj in objects {
        seen.push(obj.into_inner());
    }
    let unique: HashSet<u64> = seen.iter().copied().collect();
    assert_eq!(unique.len(), seen.len(), "token duplicated");
    assert_eq!(seen.len(), THREADS * OPS + OBJECTS, "token lost");
}

#[test]
fn bounded_propose_gives_up_but_unbounded_finishes() {
    let alg = ThreadedKSet::new(3, 1, 2);
    assert_eq!(alg.propose_bounded(0, 0, 1), None);
    // A fresh object decides solo in <= 4 laps.
    let alg = ThreadedKSet::new(3, 1, 2);
    assert_eq!(alg.propose_bounded(1, 1, 8), Some(1));
}
