//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately small measurement loop:
//!
//! * default mode: warm up once, then time up to `sample_size` iterations
//!   (bounded by the group's `measurement_time`), printing a mean per
//!   benchmark to stdout;
//! * `--test` mode (what `cargo bench -- --test` and CI use): run each
//!   benchmark body exactly once and print `ok`, so every target is
//!   execution-checked without paying measurement cost.
//!
//! Statistical analysis, plots, and baselines are out of scope; the benches
//! themselves print the paper's table/figure data, which is the artifact
//! this workspace records.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computation whose result is unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Build a driver from the process's command-line arguments.
    ///
    /// Recognizes `--test` (run each body once) and a positional filter
    /// substring; other harness flags (`--bench`, `--nocapture`, …) are
    /// accepted and ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                s if s.starts_with("--") => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    fn runs(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            criterion: self,
        }
    }

    /// Benchmark `f` under `id` with default group settings.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        self.run_one(id, sample_size, measurement_time, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, measurement_time: Duration, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.runs(id) {
            return;
        }
        let mut b = Bencher {
            iterations: if self.test_mode {
                1
            } else {
                sample_size as u64
            },
            budget: if self.test_mode {
                Duration::MAX
            } else {
                measurement_time
            },
            elapsed: Duration::ZERO,
            performed: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
        } else if b.performed > 0 {
            let mean = b.elapsed / (b.performed as u32);
            println!("{id:<60} mean {mean:>12.2?} ({} iterations)", b.performed);
        } else {
            println!("{id:<60} (no iterations)");
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations to attempt per benchmark (upper bound in this stand-in).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; this stand-in warms up with a single
    /// untimed iteration regardless.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sampling mode is ignored.
    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let (n, t) = (self.sample_size, self.measurement_time);
        self.criterion.run_one(&full, n, t, f);
        self
    }

    /// Benchmark `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group. (No cross-benchmark reporting in this stand-in.)
    pub fn finish(self) {}
}

/// Flat-vs-auto sampling selector, accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum SamplingMode {
    /// Criterion's default adaptive sampling.
    Auto,
    /// One measurement per sample.
    Flat,
    /// Linearly increasing iteration counts.
    Linear,
}

/// Runs the measured routine and accumulates timing.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    budget: Duration,
    elapsed: Duration,
    performed: u64,
}

impl Bencher {
    /// Time `routine`, running it once untimed to warm up and then up to the
    /// configured iteration count / time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.performed += 1;
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

/// A benchmark name with an optional parameter component.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into the string id a benchmark is reported under.
pub trait IntoBenchmarkId {
    /// The full id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!` (both the plain and `config =` forms).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(10));
            group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| {
                b.iter(|| {
                    runs += 1;
                    black_box(x * 2)
                })
            });
            group.finish();
        }
        // one warmup + up to 3 timed iterations
        assert!(runs >= 2);
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0u64;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        // one warmup + one counted iteration
        assert_eq!(runs, 2);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("yes".into()),
            ..Criterion::default()
        };
        let mut runs = 0u64;
        c.bench_function("no/never", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
        c.bench_function("yes/always", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }
}
