//! Offline stand-in for the `fxhash` crate: the FxHash algorithm used by
//! rustc and Firefox, a fast non-cryptographic hash for hot-path hash maps.
//!
//! FxHash consumes input one `usize` word at a time, folding each word into
//! the state with a rotate-xor-multiply. It is **not** DoS-resistant — never
//! use it for attacker-controlled keys — but it is several times faster than
//! SipHash on the short, trusted keys interior to a program, which is exactly
//! the visited-set / fingerprint workload the exploration engines here have.
//!
//! Provided surface (matching the real crate where this workspace uses it):
//! [`FxHasher`], [`FxBuildHasher`], [`FxHashMap`], [`FxHashSet`], and the
//! convenience [`hash64`].

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplier from the Firefox hash (a 64-bit golden-ratio constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A [`Hasher`] implementing the FxHash word-at-a-time algorithm.
///
/// # Example
///
/// ```
/// use std::hash::{Hash, Hasher};
/// let mut h = fxhash::FxHasher::default();
/// 42u64.hash(&mut h);
/// let a = h.finish();
/// let mut h = fxhash::FxHasher::default();
/// 42u64.hash(&mut h);
/// assert_eq!(a, h.finish(), "deterministic");
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] keyed with FxHash instead of SipHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] hashed with FxHash instead of SipHash.
pub type FxHashSet<V> = HashSet<V, FxBuildHasher>;

/// Hash a single `Hash` value to 64 bits with FxHash.
///
/// # Example
///
/// ```
/// assert_eq!(fxhash::hash64(&"abc"), fxhash::hash64(&"abc"));
/// assert_ne!(fxhash::hash64(&"abc"), fxhash::hash64(&"abd"));
/// ```
pub fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(hash64(&[1u64, 2, 3]), hash64(&[1u64, 2, 3]));
        assert_ne!(hash64(&[1u64, 2, 3]), hash64(&[1u64, 2, 4]));
        assert_ne!(hash64(&0u64), hash64(&1u64));
    }

    #[test]
    fn byte_tail_handled() {
        // Lengths straddling the 8-byte word boundary hash distinctly.
        let a: Vec<u8> = (0..7).collect();
        let b: Vec<u8> = (0..8).collect();
        let c: Vec<u8> = (0..9).collect();
        assert_ne!(hash64(&a), hash64(&b));
        assert_ne!(hash64(&b), hash64(&c));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn zero_state_collision_shape() {
        // FxHash of the empty input is 0; a single zero word also maps to 0.
        // Callers layering exactness on top (fingerprint sets with an exact
        // fallback) must not assume injectivity; this test documents it.
        assert_eq!(hash64(&()), 0);
    }
}
