//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! `proptest!` macro, `Strategy` with `prop_map`, integer-range and
//! collection strategies, `prop_oneof!`, `Just`, `ProptestConfig`, and the
//! `prop_assert*` family returning `TestCaseError` — as a deterministic
//! generate-and-check loop. There is no shrinking: a failing case reports its
//! generated inputs and panics. Generation is seeded from the test name, so
//! every run of a given test exercises the same cases (reproducibility is
//! worth more than novelty in a CI gate).

pub mod test_runner {
    //! Config, error type, and the deterministic RNG driving generation.

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case failed, mirroring
    /// `proptest::test_runner::TestCaseError`.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property does not hold for the generated inputs.
        Fail(String),
        /// The inputs were rejected (not counted as a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing-case error with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected-case error with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result of one test case, mirroring the real crate's alias.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64, seeded from the property's name: deterministic per test,
    /// different streams for different tests.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and the combinators this workspace uses.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy is
    /// just a deterministic sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
        }
    }

    /// A type-erased strategy; what [`Strategy::boxed`] returns and what
    /// `prop_oneof!` unions over.
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among several strategies with a common value type;
    /// what `prop_oneof!` expands to.
    #[derive(Clone, Debug)]
    pub struct Union<V> {
        variants: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `variants`, each picked with equal probability.
        ///
        /// # Panics
        ///
        /// Panics if `variants` is empty.
        pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
            Union { variants }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.variants.len() as u64) as usize;
            self.variants[i].generate(rng)
        }
    }

    // Tuples of strategies generate tuples of values, mirroring the real
    // crate's tuple impls (each component drawn independently, in order).
    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}", self.start, self.end
                    );
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                    let width = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// The size specification of a generated collection, mirroring
    /// `proptest::collection::SizeRange` (half-open, like the real crate's
    /// `From<Range<usize>>`).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            debug_assert!(self.lo < self.hi);
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// What [`vec()`](fn@vec) returns.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of `element` values with cardinality drawn
    /// from `size` (best-effort: capped by the element domain, like the real
    /// crate under rejection limits).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// What [`btree_set`] returns.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Give up after a bounded number of duplicate draws so narrow
            // element domains terminate (possibly under target size, but
            // never under the minimum when the domain allows it).
            let mut misses = 0;
            while out.len() < target && misses < 100 {
                if !out.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            assert!(
                out.len() >= self.size.lo.min(target),
                "element domain too narrow for requested set size"
            );
            out
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// A pool of strategies sampled uniformly; `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// the whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Route the stringified condition through a `{}` placeholder so
        // braces in the source expression never reach format! as syntax.
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            )
            .map_err(::core::convert::Into::into);
        }
    };
}

/// `prop_assert!` specialized to equality, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` == `{:?}`", left, right
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)*)
                );
            }
        }
    }};
}

/// `prop_assert!` specialized to inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?}` != `{:?}`",
                    left,
                    right
                );
            }
        }
    }};
}

/// The property-test declaration macro. Each `fn name(arg in strategy, …)
/// { body }` becomes a `#[test]` running `config.cases` deterministic
/// generate-and-check iterations; `prop_assert*` failures report the
/// generated inputs and panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, reason, inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_respects_size(v in collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn btree_set_respects_min_size(s in collection::btree_set(0usize..10, 1..6)) {
            prop_assert!(!s.is_empty() && s.len() < 6);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(0u64), (5u64..10).prop_map(|x| x * 2)]
        ) {
            prop_assert!(v == 0 || (10..20).contains(&v));
        }
    }

    #[test]
    fn question_mark_propagates_rejects_silently() {
        fn helper(flag: bool) -> Result<u64, TestCaseError> {
            if flag {
                return Err(TestCaseError::reject("skip"));
            }
            Ok(7)
        }
        // Inside a proptest body, `?` on a helper returning TestCaseError
        // compiles and rejections do not fail the test; spot-check the
        // plumbing the baselines tests rely on.
        let run = || -> TestCaseResult {
            let v = helper(false)?;
            prop_assert_eq!(v, 7);
            Ok(())
        };
        assert!(run().is_ok());
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
