//! Offline stand-in for the `rand` crate.
//!
//! Provides the exact API surface this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open integer
//! ranges — backed by SplitMix64. Every use in the workspace is explicitly
//! seeded (schedulers and adversaries must be replayable), so a small, fully
//! deterministic generator is not just sufficient but preferable: the same
//! seed yields the same schedule on every platform and toolchain.
//!
//! Note the stream differs from real `StdRng` (ChaCha12); seeds recorded by
//! one implementation do not reproduce the other's schedules.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Construct the generator from `seed`. Identical seeds yield identical
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `Rng::gen_range` can sample uniformly from a half-open
/// range.
pub trait SampleUniform: Copy {
    /// Width of `lo..hi` as a `u64` (must be nonzero).
    fn range_width(lo: Self, hi: Self) -> u64;
    /// `lo + offset`, where `offset < range_width(lo, hi)`.
    fn offset_from(lo: Self, offset: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn range_width(lo: Self, hi: Self) -> u64 {
                (hi as i128 - lo as i128) as u64
            }
            fn offset_from(lo: Self, offset: u64) -> Self {
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching real `rand`.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        let width = T::range_width(range.start, range.end);
        // Debiased multiply-shift (Lemire); bias is < 2^-32 for the widths
        // this workspace samples, but reject the tail anyway for exactness.
        let zone = u64::MAX - u64::MAX.wrapping_rem(width);
        loop {
            let x = self.next_u64();
            if x < zone || zone == 0 {
                return T::offset_from(range.start, x % width);
            }
        }
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: SplitMix64 (Steele, Lea & Flood 2014).
    /// Passes BigCrush on its own and is the canonical seeder for larger
    /// generators; plenty for schedule sampling.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_in_bounds_all_widths() {
        let mut rng = StdRng::seed_from_u64(7);
        for width in 1u64..64 {
            for _ in 0..200 {
                let x = rng.gen_range(10..10 + width);
                assert!((10..10 + width).contains(&x));
            }
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u64..5);
    }
}
