//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so the
//! schema/trace types are serialization-ready, but never actually serializes
//! anything (there is no `serde_json`/`bincode` in the dependency tree). In
//! this offline build environment the real crate is unavailable, so this
//! stand-in provides the two traits as blanket-implemented markers and
//! re-exports no-op derive macros. Replacing it with real serde is purely a
//! manifest change (delete the `[patch.crates-io]` table at the root).

/// Marker for types that real serde could serialize. Blanket-implemented:
/// any bound `T: Serialize` is satisfied, and the no-op derive needs to emit
/// nothing.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that real serde could deserialize, with the same
/// lifetime parameter as the real trait so `for<'de>` bounds still parse.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization alias, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirror of `serde::de` far enough for common imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` far enough for common imports.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Minimal functional binary encoding, added alongside the marker traits:
/// the crash-safe checkpoint files of `swapcons-sim` need *working*
/// serialization, and the marker `Serialize` above is blanket-implemented
/// (so it cannot carry methods). Little-endian, fixed-width integers,
/// `u64` length prefixes — deliberately tiny and versioned by the caller.
pub mod bin {
    /// Decoding failure.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum DecodeError {
        /// Input ended mid-value.
        UnexpectedEof,
        /// A value was structurally invalid (bad bool/option tag, non-UTF-8
        /// string, length overflow).
        Invalid,
    }

    impl core::fmt::Display for DecodeError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
                DecodeError::Invalid => write!(f, "structurally invalid value"),
            }
        }
    }

    impl std::error::Error for DecodeError {}

    /// Cursor over a byte slice being decoded.
    #[derive(Debug)]
    pub struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// A reader at the start of `bytes`.
        pub fn new(bytes: &'a [u8]) -> Self {
            Reader { bytes, pos: 0 }
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.bytes.len() - self.pos
        }

        /// Consume exactly `n` bytes.
        pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
            if self.remaining() < n {
                return Err(DecodeError::UnexpectedEof);
            }
            let out = &self.bytes[self.pos..self.pos + n];
            self.pos += n;
            Ok(out)
        }
    }

    /// Types encodable to the binary format.
    pub trait Encode {
        /// Append this value's encoding to `out`.
        fn encode(&self, out: &mut Vec<u8>);
    }

    /// Types decodable from the binary format.
    pub trait Decode: Sized {
        /// Decode one value, advancing the reader.
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
    }

    /// Encode `value` to a fresh byte vector.
    pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
        let mut out = Vec::new();
        value.encode(&mut out);
        out
    }

    /// Decode a `T` from `bytes`, requiring the input to be fully consumed.
    pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
        let mut r = Reader::new(bytes);
        let value = T::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(DecodeError::Invalid);
        }
        Ok(value)
    }

    impl Encode for u8 {
        fn encode(&self, out: &mut Vec<u8>) {
            out.push(*self);
        }
    }

    impl Decode for u8 {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(r.take(1)?[0])
        }
    }

    impl Encode for u32 {
        fn encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.to_le_bytes());
        }
    }

    impl Decode for u32 {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(u32::from_le_bytes(r.take(4)?.try_into().unwrap()))
        }
    }

    impl Encode for u64 {
        fn encode(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.to_le_bytes());
        }
    }

    impl Decode for u64 {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok(u64::from_le_bytes(r.take(8)?.try_into().unwrap()))
        }
    }

    impl Encode for usize {
        fn encode(&self, out: &mut Vec<u8>) {
            (*self as u64).encode(out);
        }
    }

    impl Decode for usize {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            usize::try_from(u64::decode(r)?).map_err(|_| DecodeError::Invalid)
        }
    }

    impl Encode for bool {
        fn encode(&self, out: &mut Vec<u8>) {
            out.push(u8::from(*self));
        }
    }

    impl Decode for bool {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            match u8::decode(r)? {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(DecodeError::Invalid),
            }
        }
    }

    impl Encode for str {
        fn encode(&self, out: &mut Vec<u8>) {
            self.len().encode(out);
            out.extend_from_slice(self.as_bytes());
        }
    }

    impl Encode for String {
        fn encode(&self, out: &mut Vec<u8>) {
            self.as_str().encode(out);
        }
    }

    impl Decode for String {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            let len = usize::decode(r)?;
            let bytes = r.take(len)?;
            String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid)
        }
    }

    impl<T: Encode> Encode for Vec<T> {
        fn encode(&self, out: &mut Vec<u8>) {
            self.len().encode(out);
            for item in self {
                item.encode(out);
            }
        }
    }

    impl<T: Decode> Decode for Vec<T> {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            let len = usize::decode(r)?;
            // Guard against adversarial length prefixes: never pre-reserve
            // more than the input could possibly hold (each element needs at
            // least one byte).
            if len > r.remaining() {
                return Err(DecodeError::Invalid);
            }
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(T::decode(r)?);
            }
            Ok(out)
        }
    }

    impl<T: Encode> Encode for Option<T> {
        fn encode(&self, out: &mut Vec<u8>) {
            match self {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    v.encode(out);
                }
            }
        }
    }

    impl<T: Decode> Decode for Option<T> {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            match u8::decode(r)? {
                0 => Ok(None),
                1 => Ok(Some(T::decode(r)?)),
                _ => Err(DecodeError::Invalid),
            }
        }
    }

    impl<A: Encode, B: Encode> Encode for (A, B) {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
            self.1.encode(out);
        }
    }

    impl<A: Decode, B: Decode> Decode for (A, B) {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok((A::decode(r)?, B::decode(r)?))
        }
    }

    impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
            self.1.encode(out);
            self.2.encode(out);
        }
    }

    impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
        fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
            Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
        }
    }
}
