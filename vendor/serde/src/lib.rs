//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so the
//! schema/trace types are serialization-ready, but never actually serializes
//! anything (there is no `serde_json`/`bincode` in the dependency tree). In
//! this offline build environment the real crate is unavailable, so this
//! stand-in provides the two traits as blanket-implemented markers and
//! re-exports no-op derive macros. Replacing it with real serde is purely a
//! manifest change (delete the `[patch.crates-io]` table at the root).

/// Marker for types that real serde could serialize. Blanket-implemented:
/// any bound `T: Serialize` is satisfied, and the no-op derive needs to emit
/// nothing.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that real serde could deserialize, with the same
/// lifetime parameter as the real trait so `for<'de>` bounds still parse.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization alias, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirror of `serde::de` far enough for common imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` far enough for common imports.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
