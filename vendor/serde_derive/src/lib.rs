//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The stand-in's `Serialize`/`Deserialize` traits are blanket-implemented
//! markers, so the derives have nothing to generate: they accept any item and
//! emit an empty token stream. `#[serde(...)]` helper attributes are accepted
//! (and ignored) so annotated types still compile.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing; the marker trait's
/// blanket impl already covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing; the marker trait's
/// blanket impl already covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
