//! Minimal work-stealing deque pool for the offline build.
//!
//! The real-world crates for this job (`crossbeam-deque`, `rayon`) are not
//! available offline, so this vendored stand-in covers exactly the surface
//! the `swapcons-sim` sharded engine needs: per-worker deques behind plain
//! mutexes, **steal-half** balancing, and a global *pending-work counter*
//! that makes quiescence detection sound.
//!
//! # Why a counter, not empty-deque checks
//!
//! A thief moves half of a victim's deque into its own deque through a
//! private intermediate buffer. While that transfer is in flight the items
//! are in *no* deque, so "every deque is empty" does **not** imply "no work
//! remains" — a termination protocol built on deque emptiness has a lost
//! -wakeup race. The [`WorkQueues::pending`] counter closes it: `push`
//! increments at publication time, [`WorkQueues::complete_one`] decrements
//! only after an item has been fully *processed* (not merely popped), and
//! steals never touch the counter. `pending() == 0` therefore means every
//! published item has been processed — stolen-but-unfinished work keeps the
//! counter positive. (The sharded engine's interleaving test in
//! `swapcons-conc` model-checks exactly this protocol.)
//!
//! # Safety
//!
//! Pure safe Rust (`forbid(unsafe_code)`). Locks are only ever held one at
//! a time — a steal drains the victim under its lock, releases it, and only
//! then locks the thief's own deque to deposit the surplus — so there is no
//! lock-order deadlock by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-worker work deques with steal-half balancing and a pending-work
/// counter for sound quiescence detection.
///
/// Owned pops are LIFO (depth-first within a worker's own backlog); steals
/// take the **oldest half** of a victim's deque, so large subtrees migrate
/// wholesale instead of item by item.
pub struct WorkQueues<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Items pushed but not yet *processed* (see the module docs).
    pending: AtomicUsize,
}

impl<T> WorkQueues<T> {
    /// A pool of `workers` empty deques.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a work pool needs at least one worker");
        WorkQueues {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Publish `item` onto `worker`'s deque and count it as pending.
    pub fn push(&self, worker: usize, item: T) {
        self.queues[worker]
            .lock()
            .expect("queue poisoned")
            .push_back(item);
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Claim an item for `worker`: its own newest item first (LIFO), else a
    /// steal-half from the first non-empty victim in round-robin order
    /// starting after `worker`. Returns `None` when every deque is
    /// *currently* empty — which, per the module docs, does **not** mean the
    /// pool is done; check [`Self::pending`] for that.
    ///
    /// The claimed item stays counted as pending until the caller invokes
    /// [`Self::complete_one`] for it.
    pub fn pop(&self, worker: usize) -> Option<T> {
        if let Some(item) = self.queues[worker]
            .lock()
            .expect("queue poisoned")
            .pop_back()
        {
            return Some(item);
        }
        self.steal(worker)
    }

    /// Steal the oldest half of the first non-empty victim's deque: one item
    /// is returned, the surplus is deposited onto the thief's own deque.
    fn steal(&self, thief: usize) -> Option<T> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (thief + offset) % n;
            let mut batch: VecDeque<T> = {
                let mut q = self.queues[victim].lock().expect("queue poisoned");
                let len = q.len();
                if len == 0 {
                    continue;
                }
                // Oldest half (front of the deque), rounded up so a
                // single-item deque is still stealable.
                q.drain(..len.div_ceil(2)).collect()
            };
            let first = batch.pop_front();
            if !batch.is_empty() {
                let mut own = self.queues[thief].lock().expect("queue poisoned");
                own.extend(batch);
            }
            return first;
        }
        None
    }

    /// Record that one previously claimed item has been fully processed.
    pub fn complete_one(&self) {
        let before = self.pending.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(before > 0, "complete_one without a pending item");
    }

    /// Items pushed but not yet processed. `0` means the pool is quiescent:
    /// every published item has been claimed *and* completed.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Snapshot every deque's contents, front to back, without disturbing
    /// them. Only meaningful at a rendezvous where no claims are in flight
    /// (otherwise claimed-but-unfinished items are invisibly absent).
    pub fn freeze(&self) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        self.queues
            .iter()
            .map(|q| q.lock().expect("queue poisoned").iter().cloned().collect())
            .collect()
    }
}

impl<T> std::fmt::Debug for WorkQueues<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueues")
            .field("workers", &self.queues.len())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn steal_takes_oldest_half_and_deposits_surplus() {
        let pool: WorkQueues<u32> = WorkQueues::new(2);
        for i in 0..8 {
            pool.push(0, i);
        }
        // Worker 1 owns nothing: the pop must steal the oldest half of
        // worker 0's deque (items 0..4), return the oldest, and deposit the
        // other three onto worker 1's own deque.
        assert_eq!(pool.pop(1), Some(0));
        let frozen = pool.freeze();
        assert_eq!(frozen[0], vec![4, 5, 6, 7]);
        assert_eq!(frozen[1], vec![1, 2, 3]);
        // Subsequent pops by worker 1 drain its own deque LIFO first.
        assert_eq!(pool.pop(1), Some(3));
        // Pending counts publications, not claims: nothing completed yet.
        assert_eq!(pool.pending(), 8);
    }

    #[test]
    fn single_item_deques_are_stealable() {
        let pool: WorkQueues<u32> = WorkQueues::new(3);
        pool.push(2, 42);
        assert_eq!(pool.pop(0), Some(42));
        assert_eq!(pool.pop(1), None);
        assert_eq!(pool.pending(), 1);
        pool.complete_one();
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn pending_tracks_processing_not_popping() {
        let pool: WorkQueues<u32> = WorkQueues::new(1);
        pool.push(0, 1);
        pool.push(0, 2);
        let _claimed = pool.pop(0).unwrap();
        // One item is claimed but unprocessed: the pool must not look done.
        assert_eq!(pool.pending(), 2);
        pool.complete_one();
        assert_eq!(pool.pending(), 1);
    }

    #[test]
    fn concurrent_workers_process_every_item_exactly_once() {
        const WORKERS: usize = 4;
        const ITEMS: u32 = 1000;
        let pool: WorkQueues<u32> = WorkQueues::new(WORKERS);
        for i in 0..ITEMS {
            pool.push((i as usize) % WORKERS, i);
        }
        let seen: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let pool = &pool;
                let seen = &seen;
                scope.spawn(move || loop {
                    match pool.pop(w) {
                        Some(item) => {
                            seen.lock().unwrap().push(item);
                            pool.complete_one();
                        }
                        None => {
                            if pool.pending() == 0 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len() as u32, ITEMS, "every item processed");
        let distinct: HashSet<u32> = seen.iter().copied().collect();
        assert_eq!(distinct.len() as u32, ITEMS, "no item processed twice");
        assert_eq!(pool.pending(), 0);
    }
}
